// Shape tests for the paper's evaluation claims: small, dedicated
// sweeps (full statistical power where cheap) asserting the qualitative
// features each figure is about — the staircase, the orderings, the
// broadcast convergence and the U-cube average-delay anomaly.

#include <gtest/gtest.h>

#include "harness/experiment.hpp"
#include "harness/figures.hpp"
#include "workload/patterns.hpp"

namespace hypercast::harness {
namespace {

/// Figure 9's staircase: under the all-port stepwise model U-cube's
/// curve is exactly ceil(log2(m+1))... almost: all-port execution can
/// only help, and for U-cube it rarely does. Assert the defining jumps:
/// the value is constant between powers of two and increases across
/// them.
TEST(FigureShapes, UCubeStaircase) {
  StepSweepConfig config;
  config.n = 6;
  config.algorithms = {"ucube"};
  config.sizes = {3, 4, 7, 8, 15, 16, 31, 32, 63};
  config.sets_per_point = 30;
  const auto series = run_step_sweep(config);
  const auto& curve = *series.find_curve("U-cube");
  const auto mean_at = [&](double x) { return curve.find(x)->stats.mean(); };
  // Jumps exactly at powers of two...
  EXPECT_LT(mean_at(3), mean_at(4));
  EXPECT_LT(mean_at(7), mean_at(8));
  EXPECT_LT(mean_at(15), mean_at(16));
  EXPECT_LT(mean_at(31), mean_at(32));
  // ...and plateaus in between.
  EXPECT_DOUBLE_EQ(mean_at(4), mean_at(7));
  EXPECT_DOUBLE_EQ(mean_at(8), mean_at(15));
  EXPECT_DOUBLE_EQ(mean_at(16), mean_at(31));
  EXPECT_DOUBLE_EQ(mean_at(32), mean_at(63));
}

TEST(FigureShapes, AllPortAlgorithmsSmoothTheStaircase) {
  // "the new algorithms smooth out the staircase behavior": within a
  // U-cube plateau their curves keep growing.
  StepSweepConfig config;
  config.n = 6;
  config.sizes = {17, 21, 25, 29};
  config.sets_per_point = 60;
  const auto series = run_step_sweep(config);
  for (const char* name : {"Maxport", "Combine", "W-sort"}) {
    const auto& curve = *series.find_curve(name);
    EXPECT_LT(curve.find(17)->stats.mean(), curve.find(29)->stats.mean())
        << name;
  }
  // While U-cube is flat across the same range.
  const auto& ucube = *series.find_curve("U-cube");
  EXPECT_DOUBLE_EQ(ucube.find(17)->stats.mean(),
                   ucube.find(29)->stats.mean());
}

TEST(FigureShapes, EveryCurveConvergesAtBroadcast) {
  // At m = N-1 the destination set is fixed, so every chain algorithm
  // builds the same spanning structure depth: all curves meet.
  StepSweepConfig config;
  config.n = 5;
  config.sizes = {31};
  config.sets_per_point = 4;
  const auto series = run_step_sweep(config);
  for (const auto& curve : series.curves()) {
    EXPECT_DOUBLE_EQ(curve.find(31)->stats.mean(), 5.0) << curve.name;
    EXPECT_DOUBLE_EQ(curve.find(31)->stats.stddev(), 0.0) << curve.name;
  }
}

TEST(FigureShapes, Figure11AnomalyUCubeAverageWorseThanBroadcast) {
  // "the average delay for U-cube is actually worse for multicast than
  // for broadcast": compare dense multicast points against m = 31 on
  // the 5-cube with the full Figure-11 configuration.
  DelaySweepConfig config;
  config.n = 5;
  config.sizes = {26, 28, 30, 31};
  config.sets_per_point = 20;
  const auto result = run_delay_sweep(config);
  const auto& ucube = *result.avg.find_curve("U-cube");
  const double broadcast = ucube.find(31)->stats.mean();
  EXPECT_GT(ucube.find(26)->stats.mean(), broadcast);
  EXPECT_GT(ucube.find(28)->stats.mean(), broadcast);
  EXPECT_GT(ucube.find(30)->stats.mean(), broadcast);
  // The all-port algorithms do NOT show the anomaly anywhere near as
  // strongly: their m=30 average stays within 2% of broadcast.
  for (const char* name : {"Maxport", "W-sort"}) {
    const auto& curve = *result.avg.find_curve(name);
    EXPECT_LT(curve.find(30)->stats.mean(), broadcast * 1.02) << name;
  }
}

TEST(FigureShapes, MaxDelayStaircasePlateausAreExactForUCube) {
  // Figure 12: U-cube's max delay is a deterministic function of the
  // step count — every set of size 8..15 pays exactly 4 tree levels.
  DelaySweepConfig config;
  config.n = 5;
  config.sizes = {8, 11, 15};
  config.sets_per_point = 10;
  config.algorithms = {"ucube"};
  const auto result = run_delay_sweep(config);
  // "Exact" at the tree-level granularity: only the per-hop term
  // (2 us per channel, a few hops of spread) varies across sets, which
  // is three orders of magnitude below the ~2000 us level cost.
  const auto& curve = *result.max.find_curve("U-cube");
  for (const double x : {8.0, 11.0, 15.0}) {
    EXPECT_LT(curve.find(x)->stats.stddev(), 10.0) << "m=" << x;
  }
  EXPECT_NEAR(curve.find(8)->stats.mean(), curve.find(15)->stats.mean(),
              20.0);
}

TEST(FigureShapes, TenCubeAdvantageExceedsFiveCube) {
  // Figures 13/14's message: W-sort's relative advantage over U-cube
  // grows with the cube size.
  DelaySweepConfig small;
  small.n = 5;
  small.sizes = {16};
  small.sets_per_point = 12;
  DelaySweepConfig large;
  large.n = 8;  // keep the test fast; the trend is monotone in n
  large.sizes = {128};
  large.sets_per_point = 12;
  const auto rs = run_delay_sweep(small);
  const auto rl = run_delay_sweep(large);
  const auto ratio = [](const DelaySweepResult& r, double x) {
    return r.avg.find_curve("U-cube")->find(x)->stats.mean() /
           r.avg.find_curve("W-sort")->find(x)->stats.mean();
  };
  EXPECT_GT(ratio(rl, 128), ratio(rs, 16));
}

TEST(FigureShapes, WsortSweepsRunEntirelyWithoutBlocking) {
  // Theorem 6 across a whole delay sweep: zero blocked acquisitions
  // contributed by W-sort (and Maxport) runs.
  DelaySweepConfig config;
  config.n = 6;
  config.sizes = {8, 24, 48};
  config.sets_per_point = 10;
  config.algorithms = {"maxport", "wsort"};
  const auto result = run_delay_sweep(config);
  EXPECT_EQ(result.blocked_acquisitions, 0u);
}

}  // namespace
}  // namespace hypercast::harness
