// Tests for the flit-level engine and its cross-validation against the
// message-level engine.

#include "sim/flit_sim.hpp"

#include <gtest/gtest.h>

#include "core/reachable.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::sim {
namespace {

using namespace testutil;
using core::MulticastSchedule;
using core::Send;

FlitConfig basic_config() {
  FlitConfig c;
  c.message_bytes = 4096;
  c.flit_bytes = 64;
  return c;
}

MulticastSchedule unicast_schedule(const Topology& topo, NodeId from,
                                   NodeId to) {
  MulticastSchedule s(topo, from);
  s.add_send(from, to, {});
  return s;
}

TEST(FlitSim, UnicastMatchesClosedForm) {
  const Topology topo(6);
  const auto config = basic_config();
  for (const NodeId to : {1u, 3u, 7u, 21u, 63u}) {
    const auto s = unicast_schedule(topo, 0, to);
    const auto result = simulate_multicast_flit(s, config);
    EXPECT_EQ(result.delay(to),
              flit_unicast_latency(config, topo.distance(0, to),
                                   config.message_bytes))
        << "to " << to;
    EXPECT_EQ(result.stats.blocked_acquisitions, 0u);
  }
}

TEST(FlitSim, PartialLastFlitKeepsExactBodyTime) {
  const Topology topo(4);
  FlitConfig config = basic_config();
  config.message_bytes = 100;  // 64 + 36
  const auto s = unicast_schedule(topo, 0, 15);
  const auto result = simulate_multicast_flit(s, config);
  EXPECT_EQ(result.delay(15), flit_unicast_latency(config, 4, 100));
}

TEST(FlitSim, FlitTransferCountIsFlitsTimesHops) {
  const Topology topo(4);
  FlitConfig config = basic_config();
  config.message_bytes = 640;  // 10 body flits + header
  const auto s = unicast_schedule(topo, 0, 0b1110);  // 3 hops
  const auto result = simulate_multicast_flit(s, config);
  EXPECT_EQ(result.stats.flit_transfers, 11u * 3u);
}

TEST(FlitSim, HeaderPipeliningIsTheOnlyGapToMessageLevel) {
  // Contention-free unicast: flit delay = message delay + h * t_flit
  // (the header flit's own transfer per hop, which the message-level
  // model folds into "distance-insensitive").
  const Topology topo(8);
  const auto fconfig = basic_config();
  SimConfig mconfig;
  mconfig.message_bytes = fconfig.message_bytes;
  const SimTime t_header =
      static_cast<SimTime>(fconfig.flit_bytes) * fconfig.cost.ns_per_byte;
  for (const NodeId to : {1u, 7u, 63u, 255u}) {
    const auto s = unicast_schedule(topo, 0, to);
    const SimTime flit = simulate_multicast_flit(s, fconfig).delay(to);
    const SimTime msg = simulate_multicast(s, mconfig).delay(to);
    EXPECT_EQ(flit - msg, topo.distance(0, to) * t_header) << "to " << to;
  }
}

TEST(FlitSim, ContentionFreeMulticastMatchesMessageLevelExactly) {
  // For contention-free schedules the engines agree up to the
  // accumulated header-pipelining term along each tree path.
  const Topology topo(6);
  workload::Rng rng(8009);
  const auto fconfig = basic_config();
  SimConfig mconfig;
  const SimTime t_header =
      static_cast<SimTime>(fconfig.flit_bytes) * fconfig.cost.ns_per_byte;
  for (int trial = 0; trial < 8; ++trial) {
    const auto req = random_request(topo, 20, rng);
    const auto s = core::wsort(req);
    const auto flit = simulate_multicast_flit(s, fconfig);
    const auto msg = simulate_multicast(s, mconfig);
    EXPECT_EQ(flit.stats.blocked_acquisitions, 0u);
    const auto info = core::tree_info(s);
    for (const NodeId d : req.destinations) {
      // Accumulate hop counts along the tree path to d.
      SimTime shift = 0;
      NodeId cur = d;
      while (cur != req.source) {
        const NodeId parent = info.parent.at(cur);
        shift += topo.distance(parent, cur) * t_header;
        cur = parent;
      }
      EXPECT_EQ(flit.delay(d) - msg.delay(d), shift) << "dest " << d;
    }
  }
}

TEST(FlitSim, EarlyTailReleaseBeatsTheMessageLevelApproximation) {
  // msg1 streams 0 -> 1111 (4 hops); msg2 wants the shared first
  // channel (0000, 3) for its 1-hop trip to 1000. The flit engine frees
  // that channel as soon as msg1's tail passes it — 3 router delays
  // before the message-level engine, which holds the whole path until
  // delivery. The gap is (remaining hops * per_hop - header flit time),
  // so make routing expensive relative to one flit to expose it.
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 0b1111, {});
  s.add_send(0, 0b1000, {});
  FlitConfig fconfig = basic_config();
  fconfig.cost.per_hop = microseconds(20);
  fconfig.flit_bytes = 16;
  fconfig.buffer_flits = 64;  // deep buffers: isolate the release effect
  SimConfig mconfig;
  mconfig.cost = fconfig.cost;
  const auto flit = simulate_multicast_flit(s, fconfig);
  const auto msg = simulate_multicast(s, mconfig);
  EXPECT_GE(flit.stats.blocked_acquisitions, 1u);
  EXPECT_GE(msg.stats.blocked_acquisitions, 1u);
  EXPECT_LT(flit.delay(0b1000), msg.delay(0b1000));
  // With the default nCUBE-2 costs (2 us routing, 64-byte flits) the
  // message-level hold is actually the cheaper approximation error:
  // the header flit's own serialization on the first link exceeds the
  // three saved router delays.
  const auto flit_default = simulate_multicast_flit(s, basic_config());
  SimConfig msg_default;
  const auto msg_d = simulate_multicast(s, msg_default);
  EXPECT_NEAR(static_cast<double>(flit_default.delay(0b1000)),
              static_cast<double>(msg_d.delay(0b1000)),
              static_cast<double>(microseconds(80)));
}

TEST(FlitSim, SameChannelSerializationStillHappens) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 9, {});
  const auto result = simulate_multicast_flit(s, basic_config());
  EXPECT_GE(result.stats.blocked_acquisitions, 1u);
  EXPECT_GT(result.delay(9), result.delay(8));
}

TEST(FlitSim, OnePortInjectionSerializes) {
  const Topology topo(4);
  FlitConfig config = basic_config();
  config.port = core::PortModel::one_port();
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  const auto result = simulate_multicast_flit(s, config);
  EXPECT_GE(result.stats.blocked_acquisitions, 1u);
  // The second worm cannot inject until the first tail leaves the
  // source, one full body time after the first header start.
  EXPECT_GT(result.delay(2), result.delay(1));
}

TEST(FlitSim, TwoFlitBuffersSufficeToStream) {
  // With equal link rates the pipeline streams at full rate for any
  // buffer depth >= 2; extra depth changes nothing uncontended.
  const Topology topo(6);
  workload::Rng rng(8011);
  const auto req = random_request(topo, 15, rng);
  const auto s = core::wsort(req);
  FlitConfig two = basic_config();
  two.buffer_flits = 2;
  FlitConfig deep = basic_config();
  deep.buffer_flits = 16;
  const auto a = simulate_multicast_flit(s, two);
  const auto b = simulate_multicast_flit(s, deep);
  for (const NodeId d : req.destinations) {
    EXPECT_EQ(a.delay(d), b.delay(d)) << "dest " << d;
  }
}

TEST(FlitSim, SingleFlitBuffersBubbleThePipeline) {
  // The classic wormhole bubble: with one-flit buffers a flit cannot
  // enter a router until its predecessor has fully left, halving the
  // streaming rate over multi-hop paths.
  const Topology topo(5);
  const auto s = unicast_schedule(topo, 0, 31);  // 5 hops
  FlitConfig one = basic_config();
  one.buffer_flits = 1;
  FlitConfig two = basic_config();
  two.buffer_flits = 2;
  const SimTime bubbled = simulate_multicast_flit(s, one).delay(31);
  const SimTime streamed = simulate_multicast_flit(s, two).delay(31);
  EXPECT_GT(bubbled, streamed);
  // One hop has no pipeline to bubble: depths agree.
  const auto s1 = unicast_schedule(topo, 0, 16);
  EXPECT_EQ(simulate_multicast_flit(s1, one).delay(16),
            simulate_multicast_flit(s1, two).delay(16));
}

TEST(FlitSim, FlitSizeGranularityOnlyAffectsHeaderTerm) {
  // Same message, 32- vs 128-byte flits: body time identical; only the
  // per-hop header flit time changes.
  const Topology topo(5);
  const auto s = unicast_schedule(topo, 0, 31);  // 5 hops
  FlitConfig small = basic_config();
  small.flit_bytes = 32;
  FlitConfig large = basic_config();
  large.flit_bytes = 128;
  const SimTime a = simulate_multicast_flit(s, small).delay(31);
  const SimTime b = simulate_multicast_flit(s, large).delay(31);
  EXPECT_EQ(b - a, 5 * (128 - 32) * small.cost.ns_per_byte);
}

TEST(FlitSim, DeterministicReplay) {
  const Topology topo(6);
  workload::Rng rng(8017);
  const auto req = random_request(topo, 30, rng);
  const auto s = core::ucube(req);  // has same-channel serialization
  const auto a = simulate_multicast_flit(s, basic_config());
  const auto b = simulate_multicast_flit(s, basic_config());
  for (const auto& [node, t] : a.delivery) {
    EXPECT_EQ(b.delivery.at(node), t);
  }
  EXPECT_EQ(a.stats.flit_transfers, b.stats.flit_transfers);
}

TEST(FlitSim, StressAllAlgorithmsDrainCompletely) {
  const Topology topo(6);
  workload::Rng rng(8039);
  FlitConfig config = basic_config();
  config.message_bytes = 512;
  for (int trial = 0; trial < 4; ++trial) {
    const auto req = random_request(topo, 40, rng);
    for (const auto& algo : core::all_algorithms()) {
      const auto result =
          simulate_multicast_flit(algo.build(req), config);
      ASSERT_EQ(result.delivery.size(), result.stats.messages) << algo.name;
      for (const NodeId d : req.destinations) {
        ASSERT_TRUE(result.delivery.contains(d)) << algo.name;
      }
    }
  }
}

TEST(FlitSim, TraceTimelineIsConsistent) {
  const Topology topo(4);
  FlitConfig config = basic_config();
  config.record_trace = true;
  MulticastSchedule s(topo, 0);
  s.add_send(0, 0b1010, {0b1011});
  s.add_send(0b1010, 0b1011, {});
  const auto result = simulate_multicast_flit(s, config);
  ASSERT_EQ(result.trace.messages.size(), 2u);
  for (const auto& m : result.trace.messages) {
    EXPECT_LE(m.issue, m.header_start);
    EXPECT_LE(m.header_start, m.path_acquired);
    EXPECT_LE(m.path_acquired, m.tail);
    EXPECT_LT(m.tail, m.done);
  }
}

}  // namespace
}  // namespace hypercast::sim
