// Golden-equality sweep: the flat arena-backed TreeBuilder must
// reproduce the schedules of the original simulated-delivery
// implementation exactly — same sends, same per-node order, same
// payloads — for every algorithm. The reference below is the pre-flat
// implementation (owned payload vectors, deque of Delivery records),
// kept verbatim so any behavioural drift in the rewrite shows up as a
// schedule mismatch rather than a silent regression.

#include <gtest/gtest.h>

#include <deque>
#include <vector>

#include "core/chain_algorithms.hpp"
#include "core/tree_builder.hpp"
#include "core/weighted_sort.hpp"
#include "core/wsort.hpp"
#include "fault/fault_aware.hpp"
#include "fault/fault_inject.hpp"
#include "hcube/bits.hpp"
#include "hcube/chain.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

// ---------------------------------------------------------------------------
// Reference implementation: the original recursive-delivery builder.
// ---------------------------------------------------------------------------

struct RefSend {
  NodeId to = 0;
  std::vector<NodeId> payload;  // owned copy, as the old code made
};

std::vector<RefSend> ref_local_sends(const Topology& topo, NodeId local,
                                     std::span<const NodeId> field,
                                     NextRule rule) {
  std::vector<RefSend> sends;
  if (field.empty()) return sends;

  std::vector<std::uint32_t> key(field.size() + 1);
  key[0] = topo.key(local);
  for (std::size_t i = 0; i < field.size(); ++i) {
    key[i + 1] = topo.key(field[i]);
  }
  const auto chain_at = [&](std::size_t i) {
    return i == 0 ? local : field[i - 1];
  };

  std::size_t left = 0;
  std::size_t right = field.size();
  while (left < right) {
    const Dim x = hcube::highest_bit(key[left] ^ key[right]);
    std::size_t highdim = left + 1;
    const bool left_side = hcube::test_bit(key[left], x);
    while (hcube::test_bit(key[highdim], x) == left_side) ++highdim;
    const std::size_t center = left + (right - left + 1) / 2;
    std::size_t next = 0;
    switch (rule) {
      case NextRule::Center:
        next = center;
        break;
      case NextRule::HighDim:
        next = highdim;
        break;
      case NextRule::MaxOfBoth:
        next = std::max(highdim, center);
        break;
    }
    RefSend send;
    send.to = chain_at(next);
    send.payload.reserve(right - next);
    for (std::size_t i = next + 1; i <= right; ++i) {
      send.payload.push_back(chain_at(i));
    }
    sends.push_back(std::move(send));
    right = next - 1;
  }
  return sends;
}

MulticastSchedule ref_build_chain_schedule(const Topology& topo,
                                           std::span<const NodeId> chain,
                                           NextRule rule) {
  MulticastSchedule schedule(topo, chain[0]);
  if (chain.size() == 1) return schedule;

  struct Delivery {
    NodeId node;
    std::vector<NodeId> field;
  };
  std::deque<Delivery> inbox;
  inbox.push_back(
      Delivery{chain[0], std::vector<NodeId>(chain.begin() + 1, chain.end())});
  while (!inbox.empty()) {
    Delivery d = std::move(inbox.front());
    inbox.pop_front();
    for (RefSend& send : ref_local_sends(topo, d.node, d.field, rule)) {
      schedule.add_send(d.node, send.to, send.payload);
      if (!send.payload.empty()) {
        inbox.push_back(Delivery{send.to, std::move(send.payload)});
      }
    }
  }
  return schedule;
}

MulticastSchedule ref_chain_algorithm(const MulticastRequest& req,
                                      NextRule rule) {
  req.validate();
  const auto chain =
      hcube::make_relative_chain(req.topo, req.source, req.destinations);
  return ref_build_chain_schedule(req.topo, chain, rule);
}

/// Reference W-sort goes through the faithful (paper-literal) weighted
/// sort, so this also pins the builder's fast path to the faithful
/// semantics end to end.
MulticastSchedule ref_wsort(const MulticastRequest& req) {
  req.validate();
  auto chain =
      hcube::make_relative_chain(req.topo, req.source, req.destinations);
  weighted_sort(req.topo, chain, WeightedSortImpl::Faithful);
  return ref_build_chain_schedule(req.topo, chain, NextRule::HighDim);
}

// ---------------------------------------------------------------------------
// Exact-equality assertion: every node's send list, in order, with
// payload contents — strictly stronger than format_tree equality.
// ---------------------------------------------------------------------------

void expect_identical(const MulticastSchedule& ref,
                      const MulticastSchedule& flat, const Topology& topo,
                      const std::string& context) {
  ASSERT_EQ(ref.num_unicasts(), flat.num_unicasts()) << context;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    const auto a = ref.sends_from(u);
    const auto b = flat.sends_from(u);
    ASSERT_EQ(a.size(), b.size()) << context << " node " << u;
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].to, b[i].to) << context << " node " << u << " send " << i;
      EXPECT_EQ(to_vec(a[i].payload), to_vec(b[i].payload))
          << context << " node " << u << " send " << i;
    }
  }
}

struct Algo {
  const char* name;
  NextRule rule;
};
constexpr Algo kChainAlgos[] = {{"ucube", NextRule::Center},
                                {"maxport", NextRule::HighDim},
                                {"combine", NextRule::MaxOfBoth}};

// ---------------------------------------------------------------------------
// Exhaustive: every destination subset of the 4-cube.
// ---------------------------------------------------------------------------

/// All 2^15 - 1 non-empty destination subsets, for a zero source (keys
/// equal ids) and a non-zero source (exercises the XOR translation).
TEST(GoldenEquality, ExhaustiveFourCubeAllSubsets) {
  const Topology topo(4);
  TreeBuilder builder;
  for (const NodeId source : {NodeId{0}, NodeId{9}}) {
    for (std::uint32_t mask = 1; mask < (1u << 16); ++mask) {
      if (mask & (1u << source)) continue;
      MulticastRequest req{topo, source, {}};
      for (NodeId d = 0; d < 16; ++d) {
        if (mask & (1u << d)) req.destinations.push_back(d);
      }
      const std::string ctx =
          "src=" + std::to_string(source) + " mask=" + std::to_string(mask);
      for (const auto& [name, rule] : kChainAlgos) {
        expect_identical(ref_chain_algorithm(req, rule),
                         builder.build(req, rule), topo, ctx + " " + name);
        if (::testing::Test::HasFailure()) return;  // first mismatch only
      }
      expect_identical(ref_wsort(req), builder.build_wsort(req, WeightedSortImpl::Fast), topo,
                       ctx + " wsort");
      if (::testing::Test::HasFailure()) return;
    }
  }
}

// ---------------------------------------------------------------------------
// Randomized: 5-cube, both resolution orders, random sources and sizes.
// ---------------------------------------------------------------------------

class GoldenEqualityFiveCube : public ::testing::TestWithParam<Resolution> {};

TEST_P(GoldenEqualityFiveCube, RandomizedSweep) {
  const Topology topo(5, GetParam());
  TreeBuilder builder;
  workload::Rng rng(20260806);
  for (int trial = 0; trial < 400; ++trial) {
    const std::size_t m = 1 + rng() % (topo.num_nodes() - 1);
    const auto req = random_request(topo, m, rng);
    const std::string ctx = "trial=" + std::to_string(trial);
    for (const auto& [name, rule] : kChainAlgos) {
      expect_identical(ref_chain_algorithm(req, rule), builder.build(req, rule),
                       topo, ctx + " " + name);
      if (::testing::Test::HasFailure()) return;
    }
    expect_identical(ref_wsort(req), builder.build_wsort(req, WeightedSortImpl::Fast), topo,
                     ctx + " wsort");
    // The registry entries route through a thread_local builder — they
    // must agree with the explicit-scratch path too.
    expect_identical(ref_wsort(req), wsort(req), topo, ctx + " wsort-registry");
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Resolutions, GoldenEqualityFiveCube,
                         ::testing::Values(Resolution::HighToLow,
                                           Resolution::LowToHigh),
                         [](const auto& info) {
                           return info.param == Resolution::HighToLow
                                      ? "HighToLow"
                                      : "LowToHigh";
                         });

// ---------------------------------------------------------------------------
// Fault-aware variants: repairing a reference-built base must equal
// repairing a flat-built base, send for send.
// ---------------------------------------------------------------------------

TEST(GoldenEquality, FaultAwareRepairMatchesOnBothBases) {
  const Topology topo(5);
  TreeBuilder builder;
  workload::Rng rng(772026);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m = 2 + rng() % 20;
    const auto req = random_request(topo, m, rng);
    const std::size_t nfaults = 1 + rng() % 6;
    const auto faults = fault::connected_link_faults(topo, nfaults, rng);
    const std::string ctx = "trial=" + std::to_string(trial);
    for (const auto& [name, rule] : kChainAlgos) {
      const auto ref_base = ref_chain_algorithm(req, rule);
      const auto flat_base = builder.build(req, rule);
      const auto ref_fixed =
          fault::repair_schedule(ref_base, req.destinations, faults);
      const auto flat_fixed =
          fault::repair_schedule(flat_base, req.destinations, faults);
      expect_identical(ref_fixed.schedule, flat_fixed.schedule, topo,
                       ctx + " " + name + "-ft");
      EXPECT_EQ(ref_fixed.report.broken, flat_fixed.report.broken)
          << ctx << " " << name;
      EXPECT_EQ(ref_fixed.report.extra_hops, flat_fixed.report.extra_hops)
          << ctx << " " << name;
      if (::testing::Test::HasFailure()) return;
    }
    const auto ref_fixed =
        fault::repair_schedule(ref_wsort(req), req.destinations, faults);
    const auto flat_fixed = fault::repair_schedule(builder.build_wsort(req, WeightedSortImpl::Fast),
                                                   req.destinations, faults);
    expect_identical(ref_fixed.schedule, flat_fixed.schedule, topo,
                     ctx + " wsort-ft");
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace hypercast::core
