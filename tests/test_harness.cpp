#include "harness/experiment.hpp"

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "harness/figures.hpp"

namespace hypercast::harness {
namespace {

TEST(Harness, SizeRange) {
  EXPECT_EQ(size_range(1, 7, 2), (std::vector<std::size_t>{1, 3, 5, 7}));
  EXPECT_EQ(size_range(5, 5, 1), (std::vector<std::size_t>{5}));
  EXPECT_EQ(size_range(10, 9, 1), (std::vector<std::size_t>{}));
}

TEST(Harness, StepSweepProducesAllCurvesAndPoints) {
  StepSweepConfig config;
  config.n = 4;
  config.sizes = {2, 5, 9};
  config.sets_per_point = 4;
  const auto series = run_step_sweep(config);
  EXPECT_EQ(series.curves().size(), 4u);
  for (const auto& curve : series.curves()) {
    EXPECT_EQ(curve.points.size(), 3u);
    for (const auto& p : curve.points) {
      EXPECT_EQ(p.stats.count(), 4u);
      EXPECT_GE(p.stats.mean(), 1.0);
    }
  }
}

TEST(Harness, StepSweepIsDeterministic) {
  StepSweepConfig config;
  config.n = 5;
  config.sizes = {3, 10};
  config.sets_per_point = 5;
  const auto a = run_step_sweep(config);
  const auto b = run_step_sweep(config);
  for (std::size_t c = 0; c < a.curves().size(); ++c) {
    for (std::size_t p = 0; p < a.curves()[c].points.size(); ++p) {
      EXPECT_DOUBLE_EQ(a.curves()[c].points[p].stats.mean(),
                       b.curves()[c].points[p].stats.mean());
    }
  }
}

TEST(Harness, UCubeCurveMatchesTheClosedForm) {
  // Under the one-port model U-cube's curve is exactly
  // ceil(log2(m+1)) — no randomness survives.
  StepSweepConfig config;
  config.n = 6;
  config.port = core::PortModel::one_port();
  config.algorithms = {"ucube"};
  config.sizes = {1, 2, 3, 7, 8, 15, 16, 40, 63};
  config.sets_per_point = 3;
  const auto series = run_step_sweep(config);
  const auto* curve = series.find_curve("U-cube");
  ASSERT_NE(curve, nullptr);
  for (const auto& p : curve->points) {
    EXPECT_DOUBLE_EQ(p.stats.mean(),
                     core::one_port_step_lower_bound(
                         static_cast<std::size_t>(p.x)))
        << "m=" << p.x;
    EXPECT_DOUBLE_EQ(p.stats.stddev(), 0.0);
  }
}

TEST(Harness, StepOrderingUCubeWorstWsortBest) {
  StepSweepConfig config;
  config.n = 6;
  config.sizes = {15, 31, 45};
  config.sets_per_point = 20;
  const auto series = run_step_sweep(config);
  for (const double x : series.xs()) {
    const double ucube = series.find_curve("U-cube")->find(x)->stats.mean();
    const double maxport = series.find_curve("Maxport")->find(x)->stats.mean();
    const double combine = series.find_curve("Combine")->find(x)->stats.mean();
    const double wsort = series.find_curve("W-sort")->find(x)->stats.mean();
    EXPECT_LE(wsort, combine + 1e-9) << "m=" << x;
    EXPECT_LE(combine, maxport + 1e-9) << "m=" << x;
    EXPECT_LE(wsort, ucube + 1e-9) << "m=" << x;
  }
}

TEST(Harness, DelaySweepProducesBothAggregates) {
  DelaySweepConfig config;
  config.n = 4;
  config.sizes = {3, 8};
  config.sets_per_point = 3;
  const auto result = run_delay_sweep(config);
  EXPECT_EQ(result.avg.curves().size(), 4u);
  EXPECT_EQ(result.max.curves().size(), 4u);
  for (const double x : result.avg.xs()) {
    for (const auto& curve : result.avg.curves()) {
      const double avg = curve.find(x)->stats.mean();
      const double mx =
          result.max.find_curve(curve.name)->find(x)->stats.mean();
      EXPECT_GT(avg, 0.0);
      EXPECT_GE(mx, avg);
    }
  }
}

TEST(Harness, DelayOrderingOnTheFiveCube) {
  // The Figure 11/12 headline: the all-port algorithms beat U-cube on
  // average delay for mid-size destination sets.
  DelaySweepConfig config;
  config.n = 5;
  config.sizes = {16, 24};
  config.sets_per_point = 8;
  const auto result = run_delay_sweep(config);
  for (const double x : result.avg.xs()) {
    const double ucube = result.avg.find_curve("U-cube")->find(x)->stats.mean();
    for (const char* other : {"Maxport", "Combine", "W-sort"}) {
      EXPECT_LT(result.avg.find_curve(other)->find(x)->stats.mean(), ucube)
          << other << " m=" << x;
    }
  }
}

TEST(Harness, QuickFigureConfigsRun) {
  // Smoke: every figure config (quick mode) executes end to end.
  EXPECT_NO_THROW({
    const auto s9 = run_step_sweep(fig9_config(/*quick=*/true));
    EXPECT_FALSE(s9.curves().empty());
  });
  EXPECT_NO_THROW({
    const auto r11 = run_delay_sweep(fig11_12_config(/*quick=*/true));
    EXPECT_FALSE(r11.avg.curves().empty());
  });
}

}  // namespace
}  // namespace hypercast::harness
