// The arc-disjoint spanning-tree construction (core/ist.hpp): exhaustive
// proof on small cubes that the n trees are pairwise arc-disjoint, each
// spans every destination, every edge is a single hop, and translation /
// pruning preserve all of it. These are the invariants the striping
// layer's bandwidth claim rests on.

#include "core/ist.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "hcube/bits.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;
using core::MulticastSchedule;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

std::vector<NodeId> broadcast_dests(const Topology& topo, NodeId source) {
  std::vector<NodeId> dests;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (u != source) dests.push_back(u);
  }
  return dests;
}

std::vector<const MulticastSchedule*> pointers(
    const std::vector<MulticastSchedule>& trees) {
  std::vector<const MulticastSchedule*> ptrs;
  for (const auto& t : trees) ptrs.push_back(&t);
  return ptrs;
}

TEST(IstParent, RuleOnSmallCube) {
  const Topology topo(3);
  // Tree 0: 1's parent is the root; even nodes hang off v | 1; odd
  // nodes (!= 1) clear their first set bit scanning cyclically from 1.
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b001), 0u);
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b010), 0b011u);
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b100), 0b101u);
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b011), 0b001u);  // clears bit 1
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b101), 0b001u);  // clears bit 2
  EXPECT_EQ(core::ist_parent0(topo, 0, 0b111), 0b101u);  // bit 1 first
  // Tree 2 scans 0, 1 after its own dimension.
  EXPECT_EQ(core::ist_parent0(topo, 2, 0b100), 0u);
  EXPECT_EQ(core::ist_parent0(topo, 2, 0b101), 0b100u);
  EXPECT_EQ(core::ist_parent0(topo, 2, 0b111), 0b110u);
}

TEST(IstParent, EveryChainReachesRoot) {
  for (Dim n = 1; n <= 6; ++n) {
    const Topology topo(n);
    for (Dim tree = 0; tree < n; ++tree) {
      for (NodeId v = 1; v < topo.num_nodes(); ++v) {
        NodeId cur = v;
        int hops = 0;
        while (cur != 0) {
          const NodeId parent = core::ist_parent0(topo, tree, cur);
          ASSERT_EQ(topo.distance(parent, cur), 1)
              << "n=" << n << " tree=" << tree << " v=" << v;
          cur = parent;
          ASSERT_LE(++hops, n + 1) << "depth bound violated";
        }
      }
    }
  }
}

// The counting identity behind the whole design: the n full trees
// together use every directed arc of the cube except the n entering the
// root — n * (2^n - 1) arcs, no clashes.
TEST(IstFullTrees, ExhaustiveArcDisjointAndSpanning) {
  for (Dim n = 1; n <= 6; ++n) {
    const Topology topo(n);
    std::vector<MulticastSchedule> trees;
    for (Dim t = 0; t < n; ++t) {
      trees.push_back(core::build_ist_tree0(topo, t));
      EXPECT_NO_THROW(trees.back().validate());
      EXPECT_TRUE(trees.back().covers(broadcast_dests(topo, 0)));
      EXPECT_EQ(trees.back().num_unicasts(), topo.num_nodes() - 1);
    }
    const auto ptrs = pointers(trees);
    const auto report = core::verify_arc_disjoint(
        topo, std::span<const MulticastSchedule* const>(ptrs));
    EXPECT_TRUE(report.disjoint) << report.summary(topo);
    EXPECT_EQ(report.arcs_used,
              static_cast<std::size_t>(n) * (topo.num_nodes() - 1));
    // No tree uses an arc entering the root (those n arcs are the only
    // ones left over; a fault on a root link touches exactly one tree).
    for (const auto& tree : trees) {
      for (const core::Unicast& u : tree.unicasts()) {
        EXPECT_NE(u.to, 0u);
      }
    }
  }
}

// The acceptance-criterion case, spelled out: every source of the
// 4-cube, full broadcast, all four trees pairwise arc-disjoint and
// spanning.
TEST(IstTranslated, Exhaustive4CubeEverySource) {
  const Topology topo(4);
  for (NodeId source = 0; source < topo.num_nodes(); ++source) {
    const auto dests = broadcast_dests(topo, source);
    std::vector<MulticastSchedule> trees;
    for (Dim t = 0; t < 4; ++t) {
      trees.push_back(core::build_ist_tree(topo, t, source, dests));
      ASSERT_NO_THROW(trees.back().validate());
      ASSERT_EQ(trees.back().source(), source);
      ASSERT_TRUE(trees.back().covers(dests));
      for (const core::Unicast& u : trees.back().unicasts()) {
        ASSERT_EQ(topo.distance(u.from, u.to), 1);
      }
    }
    const auto ptrs = pointers(trees);
    const auto report = core::verify_arc_disjoint(
        topo, std::span<const MulticastSchedule* const>(ptrs));
    ASSERT_TRUE(report.disjoint)
        << "source " << source << ": " << report.summary(topo);
    ASSERT_EQ(report.arcs_used, 4u * 15u);
  }
}

// Translation is the cache's XOR machinery: building rooted at s must
// be bit-identical to relabeling the relative tree.
TEST(IstTranslated, MatchesAssignTranslated) {
  const Topology topo(5);
  workload::Rng rng(0x157);
  for (int trial = 0; trial < 8; ++trial) {
    const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
    const auto dests = workload::random_destinations(topo, source, 12, rng);
    std::vector<NodeId> relative;
    for (const NodeId d : dests) relative.push_back(d ^ source);
    for (Dim t = 0; t < 5; ++t) {
      const MulticastSchedule direct =
          core::build_ist_tree(topo, t, source, dests);
      const MulticastSchedule rel = core::build_ist_tree0(topo, t, relative);
      MulticastSchedule translated(topo, source);
      translated.assign_translated(rel, source);
      EXPECT_TRUE(direct == translated);
    }
  }
}

TEST(IstPruned, CoversExactlyTheMarkedSubtreeAndStaysDisjoint) {
  const Topology topo(6);
  workload::Rng rng(0xbeef);
  for (int trial = 0; trial < 6; ++trial) {
    const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
    const auto dests = workload::random_destinations(topo, source, 17, rng);
    std::vector<MulticastSchedule> trees;
    for (Dim t = 0; t < 6; ++t) {
      trees.push_back(core::build_ist_tree(topo, t, source, dests));
      ASSERT_NO_THROW(trees.back().validate());
      ASSERT_TRUE(trees.back().covers(dests));
      // Pruning keeps destinations plus ancestors only: every leaf of
      // the pruned tree must be a requested destination.
      std::vector<char> sends(topo.num_nodes(), 0);
      for (const core::Unicast& u : trees.back().unicasts()) {
        sends[u.from] = 1;
      }
      for (const NodeId r : trees.back().recipients()) {
        if (!sends[r]) {
          ASSERT_TRUE(std::find(dests.begin(), dests.end(), r) != dests.end())
              << "leaf " << r << " is not a destination";
        }
      }
    }
    const auto ptrs = pointers(trees);
    const auto report = core::verify_arc_disjoint(
        topo, std::span<const MulticastSchedule* const>(ptrs));
    ASSERT_TRUE(report.disjoint) << report.summary(topo);
  }
}

// Payload semantics: each send's address field lists exactly the
// recipients in the child's subtree (its strict descendants).
TEST(IstSchedule, PayloadsAreStrictDescendants) {
  const Topology topo(4);
  for (Dim t = 0; t < 4; ++t) {
    const MulticastSchedule tree = core::build_ist_tree0(topo, t);
    for (NodeId u = 0; u < topo.num_nodes(); ++u) {
      for (const core::Send& send : tree.sends_from(u)) {
        // Everything in the payload must have a parent chain through
        // send.to.
        for (const NodeId p : send.payload) {
          NodeId cur = p;
          bool through = false;
          while (cur != 0) {
            cur = core::ist_parent0(topo, t, cur);
            if (cur == send.to) {
              through = true;
              break;
            }
          }
          EXPECT_TRUE(through) << "payload node " << p
                               << " not below child " << send.to;
        }
      }
    }
  }
}

TEST(IstVerifier, DetectsAClash) {
  const Topology topo(3);
  MulticastSchedule a = core::build_ist_tree0(topo, 0);
  MulticastSchedule b = core::build_ist_tree0(topo, 0);  // same tree twice
  const MulticastSchedule* ptrs[] = {&a, &b};
  const auto report = core::verify_arc_disjoint(
      topo, std::span<const MulticastSchedule* const>(ptrs, 2));
  EXPECT_FALSE(report.disjoint);
  EXPECT_EQ(report.first_tree, 0);
  EXPECT_EQ(report.second_tree, 1);
  EXPECT_FALSE(report.summary(topo).empty());
}

TEST(IstErrors, RejectsBadArguments) {
  const Topology topo(3);
  EXPECT_THROW(core::build_ist_tree0(topo, 3), std::invalid_argument);
  EXPECT_THROW(core::build_ist_tree0(topo, -1), std::invalid_argument);
  const NodeId bad[] = {8};
  EXPECT_THROW(core::build_ist_tree0(topo, 0, bad), std::invalid_argument);
  const NodeId zero[] = {0};
  EXPECT_THROW(core::build_ist_tree0(topo, 0, zero), std::invalid_argument);
  EXPECT_THROW(core::build_ist_tree(topo, 0, 9, {}), std::invalid_argument);
}

}  // namespace
