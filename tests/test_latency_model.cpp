#include "sim/latency_model.hpp"

#include "sim/wormhole_sim.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::sim {
namespace {

using namespace testutil;

TEST(LatencyModel, ExactForMaxportAndWsortAcrossRandomInstances) {
  workload::Rng rng(10007);
  const CostModel cost = CostModel::ncube2();
  for (const hcube::Dim n : {3, 5, 7}) {
    const Topology topo(n);
    for (int trial = 0; trial < 10; ++trial) {
      const std::size_t m =
          1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
      const auto req = random_request(topo, m, rng);
      for (const char* name : {"maxport", "wsort"}) {
        const auto schedule = core::find_algorithm(name).build(req);
        const auto predicted = predict_delays(schedule, cost, 4096);
        ASSERT_TRUE(predicted.has_value()) << name;
        SimConfig config;
        const auto simulated = simulate_multicast(schedule, config);
        for (const auto& [node, t] : predicted->delivery) {
          EXPECT_EQ(simulated.delay(node), t)
              << name << " node " << topo.format(node);
        }
        EXPECT_EQ(predicted->max_delay, simulated.max_delay());
      }
    }
  }
}

TEST(LatencyModel, RefusesChannelReusingSchedules) {
  // U-cube commonly reuses a sender channel; the model declines unless
  // explicitly allowed.
  const Topology topo(4);
  const core::MulticastRequest req{topo, 0, {8, 9, 10, 11, 12}};
  const auto schedule = core::ucube(req);
  EXPECT_FALSE(predict_delays(schedule, CostModel::ncube2(), 4096)
                   .has_value());
  const auto forced =
      predict_delays(schedule, CostModel::ncube2(), 4096,
                     /*allow_blocking_schedules=*/true);
  ASSERT_TRUE(forced.has_value());
  // As a lower bound it must not exceed the simulated delays.
  SimConfig config;
  const auto simulated = simulate_multicast(schedule, config);
  for (const auto& [node, t] : forced->delivery) {
    EXPECT_LE(t, simulated.delay(node));
  }
}

TEST(LatencyModel, SingleUnicastMatchesCostModel) {
  const Topology topo(5);
  core::MulticastSchedule s(topo, 0);
  s.add_send(0, 21, {});
  const CostModel cost = CostModel::ncube2();
  const auto predicted = predict_delays(s, cost, 2048);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_EQ(predicted->delivery.at(21),
            cost.unicast_latency(topo.distance(0, 21), 2048));
}

TEST(LatencyModel, EmptySchedulePredictsNothing) {
  core::MulticastSchedule s(Topology(4), 3);
  const auto predicted = predict_delays(s, CostModel::ncube2(), 4096);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_TRUE(predicted->delivery.empty());
  EXPECT_EQ(predicted->max_delay, 0);
}

TEST(LatencyModel, MessageSizeScalesPredictions) {
  const Topology topo(6);
  workload::Rng rng(10009);
  const auto req = random_request(topo, 12, rng);
  const auto schedule = core::wsort(req);
  const CostModel cost = CostModel::ncube2();
  const auto small = predict_delays(schedule, cost, 64);
  const auto large = predict_delays(schedule, cost, 4096);
  ASSERT_TRUE(small && large);
  EXPECT_LT(small->max_delay, large->max_delay);
}

}  // namespace
}  // namespace hypercast::sim
