#include "core/chain_algorithms.hpp"

#include <gtest/gtest.h>

#include "core/contention.hpp"
#include "hcube/ecube.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

class MaxportProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(MaxportProperty, CoversExactlyTheDestinations) {
  const Topology topo = this->topo();
  workload::Rng rng(211);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    EXPECT_TRUE(covers_exactly(maxport(req), req));
  }
}

TEST_P(MaxportProperty, EverySenderUsesDistinctOutgoingChannels) {
  // The defining property: all unicasts originating at one node leave on
  // different channels, so an all-port node issues them simultaneously.
  const Topology topo = this->topo();
  workload::Rng rng(223);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    const auto s = maxport(req);
    for (const NodeId sender : s.senders()) {
      std::set<hcube::Dim> channels;
      for (const Send& send : s.sends_from(sender)) {
        EXPECT_TRUE(
            channels.insert(hcube::delta_distinct(topo, sender, send.to))
                .second)
            << "duplicate channel at " << topo.format(sender);
      }
    }
  }
}

TEST_P(MaxportProperty, AllPortArrivalEqualsTreeDepth) {
  // With distinct channels everywhere, each node forwards everything one
  // step after receiving: arrival step == tree depth.
  const Topology topo = this->topo();
  workload::Rng rng(227);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    const auto s = maxport(req);
    const auto steps = assign_steps(s, PortModel::all_port(), req.destinations);
    std::unordered_map<NodeId, int> depth{{req.source, 0}};
    for (const Unicast& u : s.unicasts()) {
      depth[u.to] = depth.at(u.from) + 1;
      EXPECT_EQ(steps.arrival_step.at(u.to), depth.at(u.to));
    }
  }
}

TEST_P(MaxportProperty, ScheduleIsContentionFreeOnAllPort) {
  // Theorem 6 specializes to Maxport on dimension-ordered chains.
  const Topology topo = this->topo();
  workload::Rng rng(229);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 25);
    const auto req = random_request(topo, m, rng);
    const auto s = maxport(req);
    const auto report = check_contention(s, PortModel::all_port());
    EXPECT_TRUE(report.contention_free()) << report.summary(topo);
  }
}

TEST_P(MaxportProperty, MessagesStayInsideTheirSubcube) {
  // Each unicast from the algorithm forwards the message into a subcube
  // not containing the sender; the whole subtree stays inside it.
  const Topology topo = this->topo();
  workload::Rng rng(233);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    const auto s = maxport(req);
    for (const NodeId sender : s.senders()) {
      for (const Send& send : s.sends_from(sender)) {
        // The subcube: nodes agreeing with send.to at and above the
        // first routing dimension, expressed as a key-space bit.
        const hcube::Dim x =
            hcube::highest_bit(topo.key(sender) ^ topo.key(send.to));
        const auto in_subcube = [&](NodeId u) {
          return (topo.key(u) >> x) == (topo.key(send.to) >> x);
        };
        EXPECT_FALSE(in_subcube(sender));
        for (const NodeId p : send.payload) {
          EXPECT_TRUE(in_subcube(p));
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, MaxportProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(Maxport, BroadcastFormsTheDimensionTree) {
  // Maxport broadcast from node 0: the source sends one message per
  // dimension (the classic spanning binomial tree).
  const Topology topo(5);
  std::vector<NodeId> dests;
  for (NodeId u = 1; u < 32; ++u) dests.push_back(u);
  const MulticastRequest req{topo, 0, dests};
  const auto s = maxport(req);
  EXPECT_TRUE(covers_exactly(s, req));
  EXPECT_EQ(s.sends_from(0).size(), 5u);
  const auto steps = assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 5);
}

TEST(Maxport, SingleDestination) {
  const Topology topo(4);
  const MulticastRequest req{topo, 7, {8}};
  const auto s = maxport(req);
  EXPECT_EQ(s.num_unicasts(), 1u);
}

}  // namespace
}  // namespace hypercast::core
