#include "metrics/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <random>

#include "metrics/series.hpp"
#include "metrics/table.hpp"

namespace hypercast::metrics {
namespace {

TEST(OnlineStats, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.ci95_half_width(), 0.0);
}

TEST(OnlineStats, KnownSample) {
  OnlineStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MatchesNaiveComputation) {
  std::mt19937 rng(3);
  std::uniform_real_distribution<double> dist(-100, 100);
  OnlineStats s;
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) {
    const double x = dist(rng);
    xs.push_back(x);
    s.add(x);
  }
  double mean = 0;
  for (const double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double var = 0;
  for (const double x : xs) var += (x - mean) * (x - mean);
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(s.mean(), mean, 1e-9);
  EXPECT_NEAR(s.variance(), var, 1e-6);
}

TEST(OnlineStats, MergeEqualsCombinedStream) {
  std::mt19937 rng(5);
  std::uniform_real_distribution<double> dist(0, 10);
  OnlineStats all;
  OnlineStats a;
  OnlineStats b;
  for (int i = 0; i < 500; ++i) {
    const double x = dist(rng);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a;
  a.add(3.0);
  OnlineStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 3.0);
}

TEST(OnlineStats, CiShrinksWithSamples) {
  OnlineStats small;
  OnlineStats large;
  std::mt19937 rng(7);
  std::normal_distribution<double> dist(0, 1);
  for (int i = 0; i < 10; ++i) small.add(dist(rng));
  for (int i = 0; i < 1000; ++i) large.add(dist(rng));
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(Series, AccumulatesSamplesPerPoint) {
  Series s("t", "x", "y");
  s.add_sample("A", 1.0, 10.0);
  s.add_sample("A", 1.0, 20.0);
  s.add_sample("A", 2.0, 5.0);
  s.add_sample("B", 1.0, 7.0);
  ASSERT_EQ(s.curves().size(), 2u);
  const Curve* a = s.find_curve("A");
  ASSERT_NE(a, nullptr);
  const Point* p = a->find(1.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->stats.count(), 2u);
  EXPECT_DOUBLE_EQ(p->stats.mean(), 15.0);
  EXPECT_EQ(s.xs(), (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(s.find_curve("C"), nullptr);
}

TEST(Table, FormatsAllCurves) {
  Series s("My title", "m", "steps");
  s.add_sample("U-cube", 8, 3.0);
  s.add_sample("W-sort", 8, 2.0);
  s.add_sample("U-cube", 16, 4.0);
  const std::string table = format_table(s);
  EXPECT_NE(table.find("My title"), std::string::npos);
  EXPECT_NE(table.find("U-cube"), std::string::npos);
  EXPECT_NE(table.find("W-sort"), std::string::npos);
  EXPECT_NE(table.find("3.00"), std::string::npos);
  // Missing point renders as '-'.
  EXPECT_NE(table.find('-'), std::string::npos);
}

TEST(Table, CsvRoundTripStructure) {
  Series s("t", "m", "y");
  s.add_sample("A", 1, 2.5);
  s.add_sample("B", 1, 3.5);
  const std::string csv = format_csv(s, /*include_ci=*/false);
  EXPECT_EQ(csv, "x,A,B\n1,2.5,3.5\n");
  const std::string with_ci = format_csv(s, /*include_ci=*/true);
  EXPECT_NE(with_ci.find("A_ci95"), std::string::npos);
}

TEST(Table, WriteCsvCreatesFile) {
  Series s("t", "m", "y");
  s.add_sample("A", 1, 2.0);
  const std::string path = ::testing::TempDir() + "/hypercast_test.csv";
  write_csv(s, path);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header.substr(0, 3), "x,A");
}

TEST(Table, WriteCsvThrowsOnBadPath) {
  // The parent "directory" is a device file, so neither directory
  // creation nor opening the stream can succeed.
  Series s("t", "m", "y");
  EXPECT_THROW(write_csv(s, "/dev/null/x.csv"), std::runtime_error);
}

TEST(Table, WriteCsvCreatesMissingParentDirectories) {
  Series s("t", "m", "y");
  s.add_sample("A", 1, 2.0);
  const std::string path =
      ::testing::TempDir() + "/hypercast_csv_dir/nested/out.csv";
  write_csv(s, path);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(Table, AsciiPlotContainsLegend) {
  Series s("t", "m", "y");
  for (int x = 1; x <= 20; ++x) {
    s.add_sample("A", x, x);
    s.add_sample("B", x, 20 - x);
  }
  const std::string plot = format_ascii_plot(s);
  EXPECT_NE(plot.find("A = A"), std::string::npos);
  EXPECT_NE(plot.find("B = B"), std::string::npos);
  EXPECT_NE(plot.find('+'), std::string::npos);
}

}  // namespace
}  // namespace hypercast::metrics
