// Assorted cross-module cases not covered by the per-module suites.

#include <gtest/gtest.h>

#include "coll/collectives.hpp"
#include "core/chain_search.hpp"
#include "core/wsort.hpp"
#include "metrics/table.hpp"
#include "sim/flit_sim.hpp"
#include "test_util.hpp"

namespace hypercast {
namespace {

using namespace testutil;

TEST(MiscCoverage, ChainSearchWorksUnderLowToHighResolution) {
  const Topology topo(4, Resolution::LowToHigh);
  workload::Rng rng(11003);
  for (int trial = 0; trial < 10; ++trial) {
    const auto req = random_request(topo, 6, rng);
    const auto best = core::best_cube_ordered_chain(req);
    EXPECT_EQ(best.best_chain.front(), req.source);
    EXPECT_TRUE(hcube::is_cube_ordered(topo, best.best_chain));
    const int heuristic = core::assign_steps(core::wsort(req),
                                             core::PortModel::all_port(),
                                             req.destinations)
                              .total_steps;
    EXPECT_GE(heuristic, best.best_steps);
  }
}

TEST(MiscCoverage, FlitSimRespectsKPortInjection) {
  const Topology topo(4);
  sim::FlitConfig config;
  config.port = core::PortModel::k_port(2);
  core::MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  const auto result = sim::simulate_multicast_flit(s, config);
  // The third worm waits for an injection slot.
  EXPECT_GE(result.stats.blocked_acquisitions, 1u);
  EXPECT_GT(result.delay(4), result.delay(1));
}

TEST(MiscCoverage, FlitSimHandlesLowToHighRouting) {
  const Topology topo(5, Resolution::LowToHigh);
  workload::Rng rng(11005);
  const auto req = random_request(topo, 12, rng);
  const auto s = core::wsort(req);
  const auto result = sim::simulate_multicast_flit(s, sim::FlitConfig{});
  EXPECT_EQ(result.stats.blocked_acquisitions, 0u);
  EXPECT_EQ(result.delivery.size(), 12u);
}

TEST(MiscCoverage, OnePortReduceSlowerButComplete) {
  coll::Collectives::Options one;
  one.topo = Topology(5);
  one.port = core::PortModel::one_port();
  coll::Collectives::Options all;
  all.topo = Topology(5);
  workload::Rng rng(11007);
  const auto req = random_request(Topology(5), 12, rng);
  const auto r1 = coll::Collectives(one).reduce(req.source,
                                                req.destinations, 4096);
  const auto r2 = coll::Collectives(all).reduce(req.source,
                                                req.destinations, 4096);
  EXPECT_GE(r1.completion, r2.completion);
  EXPECT_EQ(r1.stats.messages, 12u);
}

TEST(MiscCoverage, AsciiPlotMarksOverlappingCurves) {
  metrics::Series s("t", "x", "y");
  for (int x = 1; x <= 10; ++x) {
    s.add_sample("A", x, 5.0);
    s.add_sample("B", x, 5.0);  // identical: every cell collides
  }
  const std::string plot = metrics::format_ascii_plot(s);
  EXPECT_NE(plot.find('*'), std::string::npos);
}

TEST(MiscCoverage, AsciiPlotOfEmptySeriesIsEmpty) {
  metrics::Series s("t", "x", "y");
  EXPECT_TRUE(metrics::format_ascii_plot(s).empty());
}

TEST(MiscCoverage, StepwiseAndSimAgreeOnMaxportOrdering) {
  // The stepwise model and the DES induce consistent arrival orders for
  // Maxport (both depth-ordered). One step of difference can invert in
  // wall-clock (a late startup at a shallow node vs an early chain of
  // deep hops), but two or more steps cannot: each tree level costs at
  // least startup + body + recv, more than the per-level spread.
  const Topology topo(6);
  workload::Rng rng(11013);
  for (int trial = 0; trial < 6; ++trial) {
    const auto req = random_request(topo, 20, rng);
    const auto s = core::maxport(req);
    const auto steps = core::assign_steps(s, core::PortModel::all_port(),
                                          req.destinations);
    const auto result = sim::simulate_multicast(s, sim::SimConfig{});
    for (const auto a : req.destinations) {
      for (const auto b : req.destinations) {
        if (steps.arrival_step.at(a) + 1 < steps.arrival_step.at(b)) {
          EXPECT_LT(result.delay(a), result.delay(b))
              << topo.format(a) << " vs " << topo.format(b);
        }
      }
    }
  }
}

TEST(MiscCoverage, SchedulesSurviveDeepTrees) {
  // A maximally deep chain: destinations at every prefix of a path.
  const Topology topo(10);
  std::vector<hcube::NodeId> dests;
  hcube::NodeId node = 0;
  for (hcube::Dim d = 9; d >= 0; --d) {
    node |= (1u << d);
    dests.push_back(node);
  }
  const core::MulticastRequest req{topo, 0, dests};
  for (const auto& algo : core::paper_algorithms()) {
    const auto s = algo.build(req);
    EXPECT_TRUE(covers_exactly(s, req)) << algo.name;
    const auto result = sim::simulate_multicast(s, sim::SimConfig{});
    EXPECT_EQ(result.delivery.size(), 10u) << algo.name;
  }
}

}  // namespace
}  // namespace hypercast
