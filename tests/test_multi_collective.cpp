// Tests for simulate_collectives: several multicasts sharing one
// network, channels, ports and processors.

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "hcube/subcube.hpp"
#include "sim/wormhole_sim.hpp"
#include "test_util.hpp"
#include "workload/patterns.hpp"

namespace hypercast::sim {
namespace {

using namespace testutil;
using core::MulticastSchedule;
using core::Send;

TEST(MultiCollective, SingleJobMatchesSimulateMulticast) {
  const Topology topo(6);
  workload::Rng rng(7001);
  const auto req = random_request(topo, 20, rng);
  const auto schedule = core::wsort(req);
  const SimConfig config;
  const auto direct = simulate_multicast(schedule, config);
  const CollectiveJob job{&schedule, 0};
  const auto multi =
      simulate_collectives(std::span<const CollectiveJob>(&job, 1), config);
  ASSERT_EQ(multi.per_job.size(), 1u);
  for (const auto& [node, t] : direct.delivery) {
    EXPECT_EQ(multi.per_job[0].delivery.at(node), t);
  }
  EXPECT_EQ(multi.makespan(), direct.max_delay());
}

TEST(MultiCollective, DisjointSubcubeJobsDoNotInterfere) {
  // Theorem 2 in action: multicasts confined to opposite half-cubes
  // (disjoint sources, destinations and channels) behave exactly as if
  // run alone.
  const Topology topo(5);
  const core::MulticastRequest a{topo, 0b00000, {1, 2, 3, 5, 9, 14}};
  const core::MulticastRequest b{topo, 0b10000, {17, 18, 21, 26, 30, 31}};
  const auto sa = core::wsort(a);
  const auto sb = core::wsort(b);
  const SimConfig config;

  const auto alone_a = simulate_multicast(sa, config);
  const auto alone_b = simulate_multicast(sb, config);

  const CollectiveJob jobs[] = {{&sa, 0}, {&sb, 0}};
  const auto together = simulate_collectives(jobs, config);
  EXPECT_EQ(together.stats.blocked_acquisitions, 0u);
  for (const auto& [node, t] : alone_a.delivery) {
    EXPECT_EQ(together.per_job[0].delivery.at(node), t);
  }
  for (const auto& [node, t] : alone_b.delivery) {
    EXPECT_EQ(together.per_job[1].delivery.at(node), t);
  }
}

TEST(MultiCollective, SharedChannelJobsSlowEachOtherDown) {
  // Two sources pushing through the same channel: job 1 must wait.
  const Topology topo(4);
  MulticastSchedule s1(topo, 0b0000);
  s1.add_send(0b0000, 0b1100, {});  // path 0000 -> 1000 -> 1100
  MulticastSchedule s2(topo, 0b1000);
  s2.add_send(0b1000, 0b1110, {});  // path 1000 -> 1100 -> 1110
  const SimConfig config;
  // s1's path uses arc (1000, 2); s2's uses (1000, 1)? No: 1000 -> 1100
  // travels dim 2 from 1000 — shared with s1's second hop.
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, 0}};
  const auto together = simulate_collectives(jobs, config);
  EXPECT_GE(together.stats.blocked_acquisitions, 1u);
  const auto alone2 = simulate_multicast(s2, config);
  // Job 2 started second in event order at the same instant, so one of
  // the two paid a wait; the makespan exceeds the solo run.
  EXPECT_GT(together.makespan(), alone2.max_delay());
}

TEST(MultiCollective, StaggeredStartsShiftDeliveries) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 0b1000, {});
  const SimConfig config;
  const SimTime offset = microseconds(500);
  MulticastSchedule s2(topo, 1);
  s2.add_send(1, 0b1001, {});
  const CollectiveJob jobs[] = {{&s, 0}, {&s2, offset}};
  const auto result = simulate_collectives(jobs, config);
  const SimTime lat = config.cost.unicast_latency(1, config.message_bytes);
  EXPECT_EQ(result.per_job[0].delivery.at(0b1000), lat);
  EXPECT_EQ(result.per_job[1].delivery.at(0b1001), offset + lat);
}

TEST(MultiCollective, SharedCpuSerializesSendsAcrossJobs) {
  // The same node is the source of two jobs starting together: its CPU
  // serializes all four startups even though channels are distinct.
  const Topology topo(4);
  MulticastSchedule s1(topo, 0);
  s1.add_send(0, 1, {});
  s1.add_send(0, 2, {});
  MulticastSchedule s2(topo, 0);
  s2.add_send(0, 4, {});
  s2.add_send(0, 8, {});
  const SimConfig config;
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, 0}};
  const auto result = simulate_collectives(jobs, config);
  const auto delay_after = [&](int startups) {
    return startups * config.cost.send_startup + config.cost.per_hop +
           config.cost.body_time(config.message_bytes) +
           config.cost.recv_overhead;
  };
  EXPECT_EQ(result.per_job[0].delivery.at(1), delay_after(1));
  EXPECT_EQ(result.per_job[0].delivery.at(2), delay_after(2));
  EXPECT_EQ(result.per_job[1].delivery.at(4), delay_after(3));
  EXPECT_EQ(result.per_job[1].delivery.at(8), delay_after(4));
}

TEST(MultiCollective, ManyConcurrentBroadcastsDrainCompletely) {
  // Stress: eight simultaneous W-sort broadcasts from different
  // sources on a 6-cube. Everything must deliver, deterministically.
  const Topology topo(6);
  std::vector<MulticastSchedule> schedules;
  schedules.reserve(8);
  for (NodeId src = 0; src < 8; ++src) {
    const core::MulticastRequest req{
        topo, src, workload::broadcast_destinations(topo, src)};
    schedules.push_back(core::wsort(req));
  }
  std::vector<CollectiveJob> jobs;
  for (const auto& s : schedules) jobs.push_back(CollectiveJob{&s, 0});
  const SimConfig config;
  const auto a = simulate_collectives(jobs, config);
  const auto b = simulate_collectives(jobs, config);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(a.per_job[j].delivery.size(), 63u);
    EXPECT_EQ(a.per_job[j].max_delay(), b.per_job[j].max_delay());
  }
  // Cross-job interference is unavoidable here.
  EXPECT_GT(a.stats.blocked_acquisitions, 0u);
  EXPECT_GT(a.makespan(), simulate_multicast(schedules[0], config).max_delay());
}

TEST(MultiCollective, PerJobStatsSumToAggregate) {
  const Topology topo(5);
  workload::Rng rng(7013);
  const auto r1 = random_request(topo, 10, rng);
  const auto r2 = random_request(topo, 10, rng);
  const auto s1 = core::ucube(r1);
  const auto s2 = core::ucube(r2);
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, 0}};
  SimConfig config;
  config.record_trace = true;
  const auto result = simulate_collectives(jobs, config);
  EXPECT_EQ(result.per_job[0].stats.messages + result.per_job[1].stats.messages,
            result.stats.messages);
  EXPECT_EQ(result.per_job[0].stats.blocked_acquisitions +
                result.per_job[1].stats.blocked_acquisitions,
            result.stats.blocked_acquisitions);
  EXPECT_EQ(result.per_job[0].trace.messages.size() +
                result.per_job[1].trace.messages.size(),
            result.trace.messages.size());
}

TEST(MultiCollective, EmptyJobListIsANoop) {
  const SimConfig config;
  const auto result = simulate_collectives({}, config);
  EXPECT_TRUE(result.per_job.empty());
  EXPECT_EQ(result.makespan(), 0);
}

}  // namespace
}  // namespace hypercast::sim
