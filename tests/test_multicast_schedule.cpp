#include "core/multicast.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace hypercast::core {
namespace {

using hcube::Topology;

TEST(MulticastRequest, ValidateAcceptsWellFormed) {
  const Topology topo(4);
  const MulticastRequest req{topo, 3, {0, 1, 7, 15}};
  EXPECT_NO_THROW(req.validate());
}

TEST(MulticastRequest, ValidateRejectsSourceAsDestination) {
  const Topology topo(4);
  const MulticastRequest req{topo, 3, {0, 3}};
  EXPECT_THROW(req.validate(), std::invalid_argument);
}

TEST(MulticastRequest, ValidateRejectsDuplicates) {
  const Topology topo(4);
  const MulticastRequest req{topo, 3, {5, 5}};
  EXPECT_THROW(req.validate(), std::invalid_argument);
}

TEST(MulticastRequest, ValidateRejectsOutOfRange) {
  const Topology topo(4);
  EXPECT_THROW((MulticastRequest{topo, 3, {16}}).validate(),
               std::invalid_argument);
  EXPECT_THROW((MulticastRequest{topo, 99, {1}}).validate(),
               std::invalid_argument);
}

TEST(MulticastSchedule, EmptyScheduleIsValid) {
  MulticastSchedule s(Topology(3), 5);
  EXPECT_NO_THROW(s.validate());
  EXPECT_TRUE(s.recipients().empty());
  EXPECT_TRUE(s.unicasts().empty());
  EXPECT_EQ(s.num_unicasts(), 0u);
  EXPECT_TRUE(s.sends_from(5).empty());
}

TEST(MulticastSchedule, SendsPreserveIssueOrder) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {5, 6});
  s.add_send(0, 2, {});
  s.add_send(4, 5, {});
  s.add_send(4, 6, {});
  const auto sends = s.sends_from(0);
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0].to, 4u);
  EXPECT_EQ(sends[1].to, 2u);
  EXPECT_EQ(testutil::to_vec(sends[0].payload),
            (std::vector<hcube::NodeId>{5, 6}));
  EXPECT_NO_THROW(s.validate());
}

TEST(MulticastSchedule, UnicastsAreBreadthFirst) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(0, 2, {});
  s.add_send(4, 5, {});
  s.add_send(2, 3, {});
  const auto unis = s.unicasts();
  ASSERT_EQ(unis.size(), 4u);
  EXPECT_EQ(unis[0].from, 0u);
  EXPECT_EQ(unis[0].to, 4u);
  EXPECT_EQ(unis[0].issue_index, 0);
  EXPECT_EQ(unis[1].to, 2u);
  EXPECT_EQ(unis[1].issue_index, 1);
  // Children of 4 before children of 2 (BFS order).
  EXPECT_EQ(unis[2].from, 4u);
  EXPECT_EQ(unis[3].from, 2u);
}

TEST(MulticastSchedule, ValidateRejectsDoubleDelivery) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(0, 4, {});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(MulticastSchedule, ValidateRejectsSelfSend) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 0, {});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(MulticastSchedule, ValidateRejectsSendBackToSource) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(4, 0, {});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(MulticastSchedule, ValidateRejectsDisconnectedSender) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(5, 6, {});  // node 5 never receives
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(MulticastSchedule, ValidateRejectsOutOfCubeTarget) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 200, {});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(MulticastSchedule, CoversAndRelays) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(4, 6, {});
  const std::vector<hcube::NodeId> dests{6};
  EXPECT_TRUE(s.covers(dests));
  EXPECT_FALSE(s.covers(std::vector<hcube::NodeId>{6, 7}));
  // 4 received the message but is not a requested destination.
  const auto relays = s.relay_processors(dests);
  EXPECT_EQ(relays, (std::vector<hcube::NodeId>{4}));
  // The source never counts as uncovered.
  EXPECT_TRUE(s.covers(std::vector<hcube::NodeId>{0, 6}));
}

TEST(MulticastSchedule, FormatTreeShowsHierarchy) {
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {});
  s.add_send(4, 5, {});
  const std::string tree = s.format_tree();
  EXPECT_NE(tree.find("000\n"), std::string::npos);
  EXPECT_NE(tree.find("  100\n"), std::string::npos);
  EXPECT_NE(tree.find("    101\n"), std::string::npos);
}

}  // namespace
}  // namespace hypercast::core
