// The "hypercast-net-v1" wire protocol and its HTTP/JSON fallback:
// framing, request/response roundtrips, malformed-input rejection, the
// deterministic schedule encoding, the minimal HTTP parser, and the
// Prometheus text exposition backing GET /metrics.

#include <gtest/gtest.h>

#include <string>
#include <string_view>
#include <vector>

#include "coll/serve_pipeline.hpp"
#include "net/http.hpp"
#include "net/protocol.hpp"
#include "obs/registry.hpp"

namespace hypercast {
namespace {

using net::decode_request;
using net::decode_response;
using net::encode_error_response;
using net::encode_ok_response;
using net::encode_request;
using net::encode_schedule;
using net::frame_size;
using net::ProtocolError;
using net::RequestMsg;
using net::ResponseMsg;
using net::Status;

RequestMsg sample_request() {
  RequestMsg msg;
  msg.id = 0x1122334455667788ull;
  msg.dim = 4;
  msg.resolution = hcube::Resolution::LowToHigh;
  msg.source = 5;
  msg.destinations = {1, 2, 9, 14};
  return msg;
}

TEST(NetProtocol, RequestRoundtrip) {
  std::string wire;
  encode_request(sample_request(), wire);

  const std::size_t size = frame_size(wire, net::kMaxFrameBytes);
  ASSERT_EQ(size, wire.size());
  const RequestMsg decoded =
      decode_request(std::string_view(wire).substr(4, size - 4));
  EXPECT_EQ(decoded.id, 0x1122334455667788ull);
  EXPECT_EQ(decoded.dim, 4);
  EXPECT_EQ(decoded.resolution, hcube::Resolution::LowToHigh);
  EXPECT_EQ(decoded.source, 5u);
  EXPECT_EQ(decoded.destinations, (std::vector<hcube::NodeId>{1, 2, 9, 14}));
}

TEST(NetProtocol, FrameSizeIncrementalAndOversized) {
  std::string wire;
  encode_request(sample_request(), wire);
  // Every strict prefix is "incomplete", never an error.
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_EQ(frame_size(std::string_view(wire).substr(0, cut), 1 << 20), 0u)
        << "prefix of " << cut << " bytes";
  }
  // Two frames back to back: the first frame's size is reported.
  std::string twice = wire + wire;
  EXPECT_EQ(frame_size(twice, 1 << 20), wire.size());
  // A length prefix beyond the cap is unrecoverable.
  std::string huge("\xff\xff\xff\x7f", 4);
  EXPECT_THROW(frame_size(huge, 1 << 20), ProtocolError);
}

TEST(NetProtocol, MalformedRequestsThrow) {
  std::string wire;
  encode_request(sample_request(), wire);
  std::string body(wire.substr(4));

  // Truncated at every possible point.
  for (std::size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_THROW(decode_request(std::string_view(body).substr(0, cut)),
                 ProtocolError)
        << "truncated to " << cut << " bytes";
  }
  // Trailing garbage.
  EXPECT_THROW(decode_request(body + "x"), ProtocolError);
  // Wrong message type.
  std::string wrong_type = body;
  wrong_type[0] = static_cast<char>(net::kScheduleResponse);
  EXPECT_THROW(decode_request(wrong_type), ProtocolError);
  // Dimension out of range.
  std::string bad_dim = body;
  bad_dim[9] = 0;
  EXPECT_THROW(decode_request(bad_dim), ProtocolError);
  bad_dim[9] = static_cast<char>(hcube::kMaxDim + 1);
  EXPECT_THROW(decode_request(bad_dim), ProtocolError);
  // Bad resolution byte.
  std::string bad_res = body;
  bad_res[10] = 2;
  EXPECT_THROW(decode_request(bad_res), ProtocolError);
  // Destination count disagreeing with the body length.
  std::string bad_count = body;
  bad_count[15] = static_cast<char>(bad_count[15] + 1);
  EXPECT_THROW(decode_request(bad_count), ProtocolError);
}

TEST(NetProtocol, ResponseRoundtrips) {
  coll::ServePipeline pipeline("wsort", nullptr);
  const auto schedule = pipeline.serve(sample_request().to_request());

  std::string ok_wire;
  encode_ok_response(7, *schedule, ok_wire);
  const std::size_t size = frame_size(ok_wire, net::kMaxFrameBytes);
  ASSERT_EQ(size, ok_wire.size());
  const std::string_view ok_body =
      std::string_view(ok_wire).substr(4, size - 4);
  const ResponseMsg ok = decode_response(ok_body);
  EXPECT_EQ(ok.id, 7u);
  EXPECT_EQ(ok.status, Status::Ok);
  std::string expected;
  encode_schedule(*schedule, expected);
  EXPECT_EQ(ok.schedule_body, expected);

  std::string err_wire;
  encode_error_response(9, Status::ShedQueueFull, "queue full", err_wire);
  const ResponseMsg err = decode_response(
      std::string_view(err_wire).substr(4));
  EXPECT_EQ(err.id, 9u);
  EXPECT_EQ(err.status, Status::ShedQueueFull);
  EXPECT_EQ(err.message, "queue full");

  // Bad status byte.
  std::string bad = err_wire.substr(4);
  bad[9] = 17;
  EXPECT_THROW(decode_response(bad), ProtocolError);
}

TEST(NetProtocol, ScheduleEncodingIsDeterministic) {
  coll::ServePipeline pipeline("ucube", nullptr);
  const auto a = pipeline.serve(sample_request().to_request());
  const auto b = pipeline.serve(sample_request().to_request());
  std::string wire_a, wire_b;
  encode_schedule(*a, wire_a);
  encode_schedule(*b, wire_b);
  EXPECT_EQ(wire_a, wire_b);
  EXPECT_FALSE(wire_a.empty());
}

// ---- HTTP ----------------------------------------------------------------

TEST(NetHttp, SniffsMethods) {
  EXPECT_TRUE(net::looks_like_http("GET /metrics HTTP/1.1\r\n"));
  EXPECT_TRUE(net::looks_like_http("POST /schedule"));
  EXPECT_FALSE(net::looks_like_http("GE"));  // not enough bytes yet
  EXPECT_FALSE(net::looks_like_http(std::string("\x20\0\0\0", 4)));
}

TEST(NetHttp, ParsesRequestWithBodyIncrementally) {
  const std::string wire =
      "POST /schedule?x=1 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Length: 11\r\n"
      "Connection: close\r\n"
      "\r\n"
      "hello world";
  net::HttpRequest request;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_EQ(net::parse_http_request(wire.substr(0, cut), 1 << 20, request),
              0u)
        << "prefix of " << cut << " bytes";
  }
  ASSERT_EQ(net::parse_http_request(wire, 1 << 20, request), wire.size());
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.target, "/schedule");
  EXPECT_EQ(request.query, "x=1");
  EXPECT_EQ(request.body, "hello world");
  EXPECT_FALSE(request.keep_alive);
  EXPECT_EQ(request.header("host"), "localhost");
}

TEST(NetHttp, RejectsMalformedRequests) {
  net::HttpRequest request;
  EXPECT_THROW(
      net::parse_http_request("NONSENSE\r\n\r\n", 1 << 20, request),
      ProtocolError);
  EXPECT_THROW(net::parse_http_request(
                   "GET / HTTP/1.1\r\nContent-Length: zork\r\n\r\n", 1 << 20,
                   request),
               ProtocolError);
  EXPECT_THROW(net::parse_http_request(
                   "GET / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
                   1 << 20, request),
               ProtocolError);
  // An over-long head (no terminator in sight) must throw, not wait.
  const std::string runaway = "GET /" + std::string(256, 'a');
  EXPECT_THROW(net::parse_http_request(runaway, 64, request), ProtocolError);
}

TEST(NetHttp, ScheduleJsonRoundtrip) {
  const RequestMsg msg = net::parse_schedule_json(
      R"({"id": 3, "n": 4, "source": 5, "dests": [1,2,9,14], "res": "low"})");
  EXPECT_EQ(msg.id, 3u);
  EXPECT_EQ(msg.dim, 4);
  EXPECT_EQ(msg.source, 5u);
  EXPECT_EQ(msg.resolution, hcube::Resolution::LowToHigh);
  EXPECT_EQ(msg.destinations, (std::vector<hcube::NodeId>{1, 2, 9, 14}));

  EXPECT_THROW(net::parse_schedule_json("{"), ProtocolError);
  EXPECT_THROW(net::parse_schedule_json(R"({"n": 4, "zap": 1})"),
               ProtocolError);
  EXPECT_THROW(net::parse_schedule_json(R"({"source": 1})"), ProtocolError);
  EXPECT_THROW(net::parse_schedule_json(R"({"n": 99})"), ProtocolError);
  EXPECT_THROW(net::parse_schedule_json(R"({"n": 4} trailing)"),
               ProtocolError);

  coll::ServePipeline pipeline("wsort", nullptr);
  const auto schedule = pipeline.serve(msg.to_request());
  const std::string json = net::schedule_to_json(*schedule);
  EXPECT_EQ(json.find(R"({"source":5,"sends":[)"), 0u) << json;
}

// ---- Prometheus exposition ----------------------------------------------

TEST(Prometheus, CountersHistogramsAndGauges) {
  obs::Registry registry;
  registry.counter("serve.requests").add(41);
  registry.counter("serve.requests").inc();
  obs::Histogram& h = registry.histogram("net.request_ns");
  h.record(1);    // bucket le=2^1
  h.record(3);    // bucket le=2^2
  h.record(3);
  registry.register_gauge_source("net", [] {
    return std::vector<std::pair<std::string, double>>{
        {"queue_depth", 7.0}};
  });

  const std::string text = registry.to_prometheus();

  EXPECT_NE(text.find("# TYPE hypercast_serve_requests_total counter\n"
                      "hypercast_serve_requests_total 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE hypercast_net_request_ns histogram\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_net_request_ns_bucket{le=\"2\"} 1\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_net_request_ns_bucket{le=\"4\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_net_request_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_net_request_ns_sum 7\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_net_request_ns_count 3\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE hypercast_net_queue_depth gauge\n"
                      "hypercast_net_queue_depth 7\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_trace_spans 0\n"), std::string::npos)
      << text;

  // Deterministic: same state, same bytes.
  EXPECT_EQ(text, registry.to_prometheus());
  // The whole exposition stays inside the Prometheus charset: after the
  // sanitizer, no '.', '-' or '/' may survive in a metric name.
  for (const char c : {'.', '-', '/'}) {
    for (std::size_t at = text.find(c); at != std::string::npos;
         at = text.find(c, at + 1)) {
      // Allowed only inside numbers (e.g. "0.5") or the "+Inf" label,
      // never at the start of a name line or after "# TYPE ".
      ASSERT_NE(at, 0u);
      EXPECT_NE(text[at - 1], '\n') << "name starts with '" << c << "'";
    }
  }
}

TEST(Prometheus, EmptyRegistryStillExposesTracerGauges) {
  obs::Registry registry;
  const std::string text = registry.to_prometheus();
  EXPECT_NE(text.find("# TYPE hypercast_trace_spans gauge\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("hypercast_trace_dropped 0\n"), std::string::npos);
}

}  // namespace
}  // namespace hypercast
