// End-to-end loopback tests of the serving front end: byte-identical
// responses vs direct ServePipeline::serve, queue-full shedding, the
// graceful drain (no lost or duplicated in-flight requests), the HTTP
// fallback endpoints, and the in-process load generator.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "coll/serve_pipeline.hpp"
#include "net/loadgen.hpp"
#include "net/protocol.hpp"
#include "net/server.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "workload/random_sets.hpp"

namespace hypercast {
namespace {

using net::RequestMsg;
using net::ResponseMsg;
using net::Server;
using net::ServerConfig;
using net::Status;

/// Blocking loopback client socket (tests want simple sequential IO).
class Client {
 public:
  explicit Client(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0)
        << strerror(errno);
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  ~Client() {
    if (fd_ >= 0) ::close(fd_);
  }

  void send_all(std::string_view bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n =
          ::send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
      ASSERT_GT(n, 0) << strerror(errno);
      off += static_cast<std::size_t>(n);
    }
  }

  /// Read one binary frame; false on clean EOF before any byte.
  bool read_frame(std::string& body) {
    while (true) {
      const std::size_t size = net::frame_size(buffer_, net::kMaxFrameBytes);
      if (size != 0) {
        body = buffer_.substr(4, size - 4);
        buffer_.erase(0, size);
        return true;
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Read until the connection closes (HTTP Connection: close replies).
  std::string read_to_eof() {
    std::string out = std::move(buffer_);
    buffer_.clear();
    char chunk[16384];
    ssize_t n;
    while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0) {
      out.append(chunk, static_cast<std::size_t>(n));
    }
    return out;
  }

  /// Read until a full HTTP response (headers + Content-Length body).
  std::string read_http_response() {
    while (true) {
      const std::size_t head_end = buffer_.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        const std::size_t cl = buffer_.find("Content-Length: ");
        EXPECT_NE(cl, std::string::npos) << buffer_;
        const std::size_t len = std::stoul(buffer_.substr(cl + 16));
        const std::size_t total = head_end + 4 + len;
        if (buffer_.size() >= total) {
          std::string out = buffer_.substr(0, total);
          buffer_.erase(0, total);
          return out;
        }
      }
      char chunk[16384];
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::move(buffer_);
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  std::string buffer_;
};

RequestMsg make_request(std::uint64_t id, int dim, std::size_t m,
                        workload::Rng& rng) {
  const hcube::Topology topo(static_cast<hcube::Dim>(dim));
  RequestMsg msg;
  msg.id = id;
  msg.dim = static_cast<hcube::Dim>(dim);
  msg.source = static_cast<hcube::NodeId>(rng() % topo.num_nodes());
  msg.destinations = workload::random_destinations(topo, msg.source, m, rng);
  return msg;
}

TEST(NetServer, LoopbackResponsesAreByteIdenticalToDirectServe) {
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 3;
  config.batch_max = 8;
  Server server(config);
  server.start();

  // The reference pipeline: same algorithm, no cache (the cache is
  // bit-identical by the schedule-cache tests; here it must not matter).
  coll::ServePipeline direct(config.algorithm, nullptr);

  constexpr int kThreads = 4;
  constexpr int kRequestsPerConn = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      workload::Rng rng(0xC11E47ull + static_cast<std::uint64_t>(t));
      Client client(server.port());
      std::string wire;
      std::map<std::uint64_t, RequestMsg> pending;
      for (int i = 0; i < kRequestsPerConn; ++i) {
        const auto id =
            static_cast<std::uint64_t>(t * kRequestsPerConn + i);
        RequestMsg msg = make_request(id, 6, 1 + (i % 40), rng);
        net::encode_request(msg, wire);
        pending.emplace(id, std::move(msg));
      }
      client.send_all(wire);  // all at once: maximal batching pressure
      std::string body;
      for (int i = 0; i < kRequestsPerConn; ++i) {
        if (!client.read_frame(body)) {
          ++failures;
          return;
        }
        const ResponseMsg response = net::decode_response(body);
        const auto it = pending.find(response.id);
        if (it == pending.end() || response.status != Status::Ok) {
          ++failures;
          continue;
        }
        std::string expected;
        net::encode_schedule(*direct.serve(it->second.to_request()),
                             expected);
        if (response.schedule_body != expected) ++failures;
        pending.erase(it);  // a duplicate response would fail the find
      }
      if (!pending.empty()) ++failures;
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  server.stop();
  EXPECT_EQ(server.outstanding(), 0u);
}

TEST(NetServer, QueueFullSheddingAndAccounting) {
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;
  config.batch_max = 1;
  config.cache = false;
  Server server(config);
  server.start();

  Client client(server.port());
  workload::Rng rng(0xBADCAFEull);

  // One write carrying an expensive request followed by a flood of
  // cheap ones. The event loop admits them in order within a single
  // parse pass: the big request occupies the lone worker for
  // milliseconds, the capacity-1 queue takes one more, and everything
  // behind it must shed — not block, not vanish.
  constexpr int kFlood = 64;
  std::string wire;
  net::encode_request(make_request(0, 16, 20000, rng), wire);
  for (int i = 1; i <= kFlood; ++i) {
    net::encode_request(make_request(static_cast<std::uint64_t>(i), 6, 8,
                                     rng),
                        wire);
  }
  client.send_all(wire);

  int ok = 0, shed = 0, other = 0;
  std::string body;
  for (int i = 0; i < kFlood + 1; ++i) {
    ASSERT_TRUE(client.read_frame(body)) << "response " << i << " missing";
    const ResponseMsg response = net::decode_response(body);
    if (response.status == Status::Ok) {
      ++ok;
    } else if (response.status == Status::ShedQueueFull) {
      ++shed;
    } else {
      ++other;
    }
  }
  EXPECT_EQ(ok + shed + other, kFlood + 1);
  EXPECT_EQ(other, 0);
  EXPECT_GE(ok, 1);    // the expensive request itself
  EXPECT_GE(shed, 1);  // a capacity-1 queue cannot absorb the flood
  server.stop();
}

TEST(NetServer, QueuedExpiryShedsWithExactlyOneResponseAndOneCount) {
  // Regression: requests whose per-request deadline expires while
  // *batched behind* slower work used to ride the newest request's
  // slack (the worker collapsed deadlines via max) and be served late.
  // Each must instead get exactly one ShedDeadline response and exactly
  // one net.shed_deadline increment — never a double count, never a
  // silent drop.
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 1;
  config.batch_max = 1;
  config.cache = false;
  config.deadline_ms = 1;
  Server server(config);
  server.start();

  obs::Counter& shed_counter =
      obs::default_registry().counter("net.shed_deadline");
  const std::uint64_t shed_before = shed_counter.value();

  Client client(server.port());
  workload::Rng rng(0xDEAD1135ull);
  // One write: a huge request that holds the lone worker far past the
  // 1 ms window, then cheap ones that expire while queued behind it.
  constexpr int kCheap = 8;
  std::string wire;
  net::encode_request(make_request(0, 16, 40000, rng), wire);
  for (int i = 1; i <= kCheap; ++i) {
    net::encode_request(make_request(static_cast<std::uint64_t>(i), 6, 8, rng),
                        wire);
  }
  client.send_all(wire);

  std::map<std::uint64_t, Status> answered;
  std::string body;
  for (int i = 0; i < kCheap + 1; ++i) {
    ASSERT_TRUE(client.read_frame(body)) << "response " << i << " missing";
    const ResponseMsg response = net::decode_response(body);
    EXPECT_EQ(answered.count(response.id), 0u)
        << "duplicate response for " << response.id;
    answered[response.id] = response.status;
  }
  ASSERT_EQ(answered.size(), static_cast<std::size_t>(kCheap + 1));
  std::uint64_t shed_responses = 0;
  for (const auto& [id, status] : answered) {
    EXPECT_TRUE(status == Status::Ok || status == Status::ShedDeadline)
        << "id " << id << " status " << static_cast<int>(status);
    if (status == Status::ShedDeadline) ++shed_responses;
  }
  // Every cheap request sat in the queue for the big one's whole build
  // (>> 1 ms): all of them shed.
  EXPECT_GE(shed_responses, static_cast<std::uint64_t>(kCheap));
  // Shed accounting matches responses one-for-one (no double count).
  EXPECT_EQ(shed_counter.value() - shed_before, shed_responses);

  server.stop();
  EXPECT_FALSE(client.read_frame(body));  // nothing extra after the drain
  EXPECT_EQ(server.outstanding(), 0u);
}

TEST(NetServer, CoschedServingAnswersEverythingByteIdentically) {
  // --cosched only reorders responses into wave launch order; payloads
  // and completeness must match plain serving exactly.
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 2;
  config.batch_max = 32;
  config.cosched = true;
  Server server(config);
  server.start();

  coll::ServePipeline direct(config.algorithm, nullptr);
  Client client(server.port());
  workload::Rng rng(0xC05C4EDull);
  constexpr int kRequests = 48;
  std::string wire;
  std::map<std::uint64_t, RequestMsg> pending;
  for (int i = 0; i < kRequests; ++i) {
    RequestMsg msg = make_request(static_cast<std::uint64_t>(i), 6,
                                  4 + (i % 24), rng);
    net::encode_request(msg, wire);
    pending.emplace(msg.id, std::move(msg));
  }
  client.send_all(wire);  // one write: maximal batching, real waves

  std::string body;
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(client.read_frame(body)) << "response " << i << " missing";
    const ResponseMsg response = net::decode_response(body);
    const auto it = pending.find(response.id);
    ASSERT_NE(it, pending.end()) << "unknown/duplicate id " << response.id;
    ASSERT_EQ(response.status, Status::Ok);
    std::string expected;
    net::encode_schedule(*direct.serve(it->second.to_request()), expected);
    EXPECT_EQ(response.schedule_body, expected);
    pending.erase(it);
  }
  EXPECT_TRUE(pending.empty());
  server.stop();
  EXPECT_EQ(server.outstanding(), 0u);
}

TEST(NetServer, GracefulDrainLosesAndDuplicatesNothing) {
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  server.start();

  Client client(server.port());
  workload::Rng rng(0xD1A1Aull);
  constexpr int kRequests = 64;
  std::string wire;
  for (int i = 0; i < kRequests; ++i) {
    net::encode_request(make_request(static_cast<std::uint64_t>(i), 8, 32,
                                     rng),
                        wire);
  }
  client.send_all(wire);
  // Begin the drain while requests are still queued and in flight.
  server.request_stop();

  std::map<std::uint64_t, Status> answered;
  std::string body;
  while (client.read_frame(body)) {
    const ResponseMsg response = net::decode_response(body);
    // No duplicated responses.
    EXPECT_EQ(answered.count(response.id), 0u) << response.id;
    answered[response.id] = response.status;
    EXPECT_TRUE(response.status == Status::Ok ||
                response.status == Status::ShuttingDown)
        << static_cast<int>(response.status);
  }
  server.stop();  // joins; the drain flushed everything admitted
  EXPECT_EQ(server.outstanding(), 0u);
  EXPECT_LE(answered.size(), static_cast<std::size_t>(kRequests));
}

TEST(NetServer, HttpEndpoints) {
  obs::FlagsGuard flags;
  Server server(ServerConfig{});
  server.start();

  {
    Client client(server.port());
    client.send_all(
        "POST /schedule HTTP/1.1\r\nContent-Length: 39\r\n\r\n"
        R"({"n": 4, "source": 0, "dests": [1,2,3]})");
    const std::string response = client.read_http_response();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos)
        << response;
    EXPECT_NE(response.find(R"("source":0)"), std::string::npos) << response;
  }
  {
    Client client(server.port());
    client.send_all("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string response = client.read_to_eof();
    EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
    EXPECT_NE(response.find("# TYPE hypercast_net_requests_total counter"),
              std::string::npos)
        << response;
    EXPECT_NE(response.find("hypercast_net_connections"), std::string::npos);
  }
  {
    Client client(server.port());
    client.send_all("GET /stats HTTP/1.1\r\nConnection: close\r\n\r\n");
    const std::string response = client.read_to_eof();
    EXPECT_NE(response.find(R"("schema":"hypercast-stats-v1")"),
              std::string::npos)
        << response;
  }
  {
    Client client(server.port());
    client.send_all("GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_NE(client.read_to_eof().find("ok"), std::string::npos);
  }
  {
    Client client(server.port());
    client.send_all("GET /nope HTTP/1.1\r\nConnection: close\r\n\r\n");
    EXPECT_NE(client.read_to_eof().find("404"), std::string::npos);
  }
  {
    Client client(server.port());
    client.send_all(
        "POST /schedule HTTP/1.1\r\nContent-Length: 9\r\n\r\nnot json!");
    const std::string response = client.read_http_response();
    EXPECT_NE(response.find("400"), std::string::npos) << response;
  }
  {
    // Keep-alive: two requests on one connection, answered in order.
    Client client(server.port());
    const std::string post =
        "POST /schedule HTTP/1.1\r\nContent-Length: 39\r\n\r\n"
        R"({"n": 4, "source": 0, "dests": [1,2,3]})";
    client.send_all(post);
    client.send_all(post);
    EXPECT_NE(client.read_http_response().find("200"), std::string::npos);
    EXPECT_NE(client.read_http_response().find("200"), std::string::npos);
  }
  server.stop();
}

TEST(NetServer, InProcessLoadgenClosedLoop) {
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  server.start();

  net::LoadgenConfig load;
  load.port = server.port();
  load.connections = 2;
  load.depth = 8;
  load.total_requests = 400;
  load.dim = 8;
  load.dest_count = 24;
  load.shape_pool = 16;
  const net::LoadgenResult result = net::run_loadgen(load);

  EXPECT_EQ(result.sent, 400u);
  EXPECT_EQ(result.ok, 400u);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.io_errors, 0u);
  EXPECT_EQ(result.shed(), 0u);
  EXPECT_EQ(result.latencies_ns.size(), 400u);
  EXPECT_GT(result.latency_ns(0.99), 0u);
  EXPECT_GE(result.latency_ns(0.99), result.latency_ns(0.50));

  const std::string artifact = net::bench_artifact_json(load, result);
  EXPECT_NE(artifact.find(R"("schema":"hypercast-bench-v1")"),
            std::string::npos);
  EXPECT_NE(artifact.find(R"("name":"serve_net")"), std::string::npos);
  EXPECT_NE(artifact.find("requests_per_sec"), std::string::npos);
  EXPECT_NE(artifact.find("shed_rate"), std::string::npos);
  EXPECT_NE(artifact.find("latency_p99_us"), std::string::npos);

  server.stop();
}

TEST(NetServer, OpenLoopLoadgenAndMixes) {
  obs::FlagsGuard flags;
  Server server(ServerConfig{});
  server.start();

  net::LoadgenConfig load;
  load.port = server.port();
  load.connections = 2;
  load.open_rate = 2000.0;
  load.duration_s = 0.3;
  load.dim = 7;
  load.dest_count = 16;
  load.mix = "random";
  const net::LoadgenResult result = net::run_loadgen(load);
  EXPECT_GT(result.sent, 0u);
  EXPECT_EQ(result.ok, result.sent);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.io_errors, 0u);
  server.stop();
}

TEST(NetServer, OpenLoopOfferedRateDoesNotDrift) {
  // Regression: the open-loop generator used to decide "done sending"
  // from the wall clock, so arrivals scheduled before stop but delayed
  // by a blocked send were silently dropped — the offered load drifted
  // below the configured rate whenever the server pushed back. The
  // schedule itself now decides: every arrival with next_send < stop is
  // owed. At 4000 req/s across 2 connections for 1 s the generator owes
  // 2000 sends per connection; accept 1% for thread start-up skew
  // (a late-starting connection owes proportionally fewer).
  obs::FlagsGuard flags;
  ServerConfig config;
  config.workers = 2;
  Server server(config);
  server.start();

  net::LoadgenConfig load;
  load.port = server.port();
  load.connections = 2;
  load.open_rate = 4000.0;
  load.duration_s = 1.0;
  load.dim = 6;
  load.dest_count = 8;
  load.shape_pool = 8;
  const net::LoadgenResult result = net::run_loadgen(load);

  const double offered = load.open_rate * load.duration_s;
  EXPECT_LE(result.sent, static_cast<std::uint64_t>(offered));
  EXPECT_GE(static_cast<double>(result.sent), 0.99 * offered)
      << "sent " << result.sent << " of " << offered;
  EXPECT_EQ(result.ok, result.sent);
  EXPECT_EQ(result.lost, 0u);
  EXPECT_EQ(result.io_errors, 0u);
  server.stop();
}

TEST(NetServer, ConfigValidationAndEphemeralPorts) {
  EXPECT_THROW(
      {
        Server bad(ServerConfig{.algorithm = "no-such-algorithm"});
        bad.start();
      },
      std::invalid_argument);

  // Two servers on ephemeral ports coexist; start/stop is clean.
  Server a((ServerConfig{}));
  Server b((ServerConfig{}));
  a.start();
  b.start();
  EXPECT_NE(a.port(), 0);
  EXPECT_NE(b.port(), 0);
  EXPECT_NE(a.port(), b.port());
  a.stop();
  b.stop();
}

}  // namespace
}  // namespace hypercast
