#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "sim/wormhole_sim.hpp"
#include "test_util.hpp"

namespace hypercast {
namespace {

using namespace testutil;
using obs::Counter;
using obs::Histogram;
using obs::HistogramSnapshot;
using obs::Registry;
using obs::Tracer;

// ---------------------------------------------------------------- histogram

TEST(ObsHistogram, EmptySnapshotReportsZeroEverywhere) {
  const Histogram h;
  const HistogramSnapshot s = h.snapshot();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  for (const double q : {0.0, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(q), 0.0) << "q " << q;
  }
}

TEST(ObsHistogram, SingleSampleIsEveryPercentile) {
  Histogram h;
  h.record(42);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 42u);
  EXPECT_EQ(s.min, 42u);
  EXPECT_EQ(s.max, 42u);
  // Percentiles are clamped to [min, max], so every quantile of a
  // one-sample histogram is that sample.
  for (const double q : {0.0, 0.25, 0.5, 0.95, 1.0}) {
    EXPECT_DOUBLE_EQ(s.percentile(q), 42.0) << "q " << q;
  }
}

TEST(ObsHistogram, ZeroLandsInBucketZero) {
  Histogram h;
  h.record(0);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.buckets[0], 1u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

TEST(ObsHistogram, OverflowAbsorbedByTopBucket) {
  Histogram h;
  h.record(~std::uint64_t{0});
  h.record(std::uint64_t{1} << 63);
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, 2u);
  EXPECT_EQ(s.buckets[HistogramSnapshot::kBuckets - 1], 2u);
  EXPECT_EQ(s.max, ~std::uint64_t{0});
  // Clamping keeps the interpolated percentile inside [min, max] even in
  // the unbounded overflow bucket.
  EXPECT_LE(s.percentile(1.0), static_cast<double>(s.max));
  EXPECT_GE(s.percentile(0.0), static_cast<double>(s.min));
}

TEST(ObsHistogram, BucketIndexMatchesBucketBounds) {
  for (const std::uint64_t v :
       {std::uint64_t{0}, std::uint64_t{1}, std::uint64_t{2}, std::uint64_t{3},
        std::uint64_t{4}, std::uint64_t{7}, std::uint64_t{8},
        std::uint64_t{1023}, std::uint64_t{1024}, std::uint64_t{1} << 40,
        (std::uint64_t{1} << 62) + 17, ~std::uint64_t{0}}) {
    const std::size_t i = Histogram::bucket_index(v);
    EXPECT_GE(v, HistogramSnapshot::bucket_lower(i)) << "v " << v;
    if (i < HistogramSnapshot::kBuckets - 1) {
      EXPECT_LT(v, HistogramSnapshot::bucket_upper(i)) << "v " << v;
    }  // the top bucket absorbs everything up to and including ~0
  }
}

TEST(ObsHistogram, MergeOfDisjointSnapshotsIsExact) {
  Histogram low, high;
  std::uint64_t low_sum = 0, high_sum = 0;
  for (std::uint64_t v = 1; v <= 100; ++v) {
    low.record(v);
    low_sum += v;
  }
  for (std::uint64_t v = 100000; v < 100050; ++v) {
    high.record(v);
    high_sum += v;
  }
  HistogramSnapshot merged = low.snapshot();
  merged.merge(high.snapshot());
  EXPECT_EQ(merged.count, 150u);
  EXPECT_EQ(merged.sum, low_sum + high_sum);
  EXPECT_EQ(merged.min, 1u);
  EXPECT_EQ(merged.max, 100049u);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : merged.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, merged.count);
  // The low half of the distribution still reads low; the p90 lands in
  // the high samples' log2 bucket (interpolation can place it anywhere
  // inside [bucket_lower, max], so bound it by the bucket floor).
  EXPECT_LT(merged.percentile(0.5), 101.0);
  EXPECT_GE(merged.percentile(0.9),
            static_cast<double>(HistogramSnapshot::bucket_lower(
                Histogram::bucket_index(100000))));
}

TEST(ObsHistogram, PercentilesAreMonotoneAndBounded) {
  Histogram h;
  std::uint64_t x = 88172645463325252ull;  // xorshift64
  for (int i = 0; i < 10000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    h.record(x % 1000000);
  }
  const HistogramSnapshot s = h.snapshot();
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = s.percentile(static_cast<double>(i) / 100.0);
    EXPECT_GE(p, prev) << "q " << i / 100.0;
    EXPECT_GE(p, static_cast<double>(s.min));
    EXPECT_LE(p, static_cast<double>(s.max));
    prev = p;
  }
}

TEST(ObsHistogram, InconsistentSnapshotStaysClampedAndMonotone) {
  // A racy snapshot can observe a stripe's bucket increment before its
  // min/max CAS lands: count > 0 with min still at the ~0 sentinel and
  // max still 0. percentile() must degrade gracefully (no inverted
  // clamp, no div-by-zero), stay monotone in q and stay inside the
  // bounds the snapshot *can* vouch for.
  HistogramSnapshot s{};
  s.buckets[3] = 5;  // claims samples in [4, 8)
  s.count = 5;
  s.sum = 25;
  s.min = ~std::uint64_t{0};  // unwitnessed sentinel
  s.max = 0;                  // unwitnessed
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = s.percentile(static_cast<double>(i) / 100.0);
    EXPECT_GE(p, prev) << "q " << i / 100.0;
    EXPECT_GE(p, 0.0);
    prev = p;
  }

  // The same inversion via merge of a populated and an empty-but-racy
  // snapshot keeps min <= max.
  Histogram real;
  real.record(100);
  HistogramSnapshot merged = real.snapshot();
  merged.merge(s);
  EXPECT_LE(merged.percentile(0.5), static_cast<double>(merged.max));
}

TEST(ObsHistogram, SingleBucketSaturatedMergedAcrossShards) {
  // Shard-per-worker histograms merged for exposition: every sample in
  // one log2 bucket. Quantiles must be ordered and live inside the
  // bucket's observed [min, max].
  Histogram shards[4];
  for (int s = 0; s < 4; ++s) {
    for (int i = 0; i < 1000; ++i) {
      shards[s].record(700 + static_cast<std::uint64_t>(s));  // bucket [512,1024)
    }
  }
  HistogramSnapshot merged = shards[0].snapshot();
  for (int s = 1; s < 4; ++s) merged.merge(shards[s].snapshot());
  EXPECT_EQ(merged.count, 4000u);
  EXPECT_EQ(merged.min, 700u);
  EXPECT_EQ(merged.max, 703u);
  const double p50 = merged.percentile(0.50);
  const double p95 = merged.percentile(0.95);
  const double p99 = merged.percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_LE(p99, static_cast<double>(merged.max));
  EXPECT_GE(p50, static_cast<double>(merged.min));
}

TEST(ObsHistogram, MergePreservesMinAcrossEmptyAndNonEmpty) {
  Histogram populated;
  populated.record(37);
  const Histogram empty;

  // empty.merge(populated) and populated.merge(empty) both keep the
  // real extremes; the empty side's zero/sentinel state must not win.
  HistogramSnapshot a = empty.snapshot();
  a.merge(populated.snapshot());
  EXPECT_EQ(a.count, 1u);
  EXPECT_EQ(a.min, 37u);
  EXPECT_EQ(a.max, 37u);
  EXPECT_DOUBLE_EQ(a.percentile(0.5), 37.0);

  HistogramSnapshot b = populated.snapshot();
  b.merge(empty.snapshot());
  EXPECT_EQ(b.min, 37u);
  EXPECT_EQ(b.max, 37u);
  EXPECT_DOUBLE_EQ(b.percentile(0.99), 37.0);
}

TEST(ObsHistogram, ResetZeroes) {
  Histogram h;
  h.record(5);
  h.reset();
  EXPECT_TRUE(h.snapshot().empty());
  h.record(9);  // still usable after reset
  EXPECT_EQ(h.snapshot().count, 1u);
}

// ------------------------------------------------------- concurrent hammers

TEST(ObsCounter, MultithreadedHammerSumsExactly) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
      c.add(7);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.value(), kThreads * (kPerThread + 7));
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(ObsHistogram, MultithreadedHammerCountsExactly) {
  Histogram h;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& w : workers) w.join();
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  constexpr std::uint64_t kTotal = kThreads * kPerThread;
  EXPECT_EQ(s.sum, kTotal * (kTotal - 1) / 2);  // 0..kTotal-1 each once
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, kTotal - 1);
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : s.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, s.count);
}

// ------------------------------------------------------------------ tracer

TEST(ObsTracer, RecordsDrainsAndRebasis) {
  Tracer t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.earliest_start_ns(), 0u);
  t.record("late", 5000, 250);
  t.record("early", 1000, 500);
  EXPECT_EQ(t.size(), 2u);
  EXPECT_EQ(t.earliest_start_ns(), 1000u);

  const std::string json = t.to_chrome_json();
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"name\":\"early\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"late\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  // Rebased to the earliest span: "early" starts at ts 0, "late" 4 us in.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":4"), std::string::npos);

  const std::vector<obs::SpanEvent> drained = t.drain();
  ASSERT_EQ(drained.size(), 2u);
  EXPECT_EQ(drained[0].name, "late");  // insertion order
  EXPECT_EQ(drained[1].name, "early");
  EXPECT_EQ(t.size(), 0u);
}

TEST(ObsTracer, CapCountsDropsInsteadOfGrowing) {
  Tracer t;
  for (std::size_t i = 0; i < Tracer::kMaxEvents + 5; ++i) {
    t.record("e", i, 1);
  }
  EXPECT_EQ(t.size(), Tracer::kMaxEvents);
  EXPECT_EQ(t.dropped(), 5u);
  t.clear();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.dropped(), 0u);
}

TEST(ObsTracer, SpanGuardRecordsOnlyWhenTracingEnabled) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  obs::FlagsGuard flags;
  Tracer& tracer = obs::default_registry().tracer();
  tracer.clear();

  obs::set_tracing_enabled(false);
  { HYPERCAST_OBS_SPAN("test.untraced"); }
  EXPECT_EQ(tracer.size(), 0u);

  obs::set_tracing_enabled(true);
  { HYPERCAST_OBS_SPAN("test.traced"); }
  obs::set_tracing_enabled(false);
  ASSERT_EQ(tracer.size(), 1u);
  const auto events = tracer.drain();
  EXPECT_EQ(events[0].name, "test.traced");
  EXPECT_GT(events[0].start_ns, 0u);
}

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, InstrumentsHaveStableIdentity) {
  Registry reg;
  Counter& a = reg.counter("a");
  Histogram& h = reg.histogram("h");
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(&h, &reg.histogram("h"));
  EXPECT_NE(&a, &reg.counter("b"));
  a.inc();
  reg.reset();  // zeroes values, keeps registrations (and addresses)
  EXPECT_EQ(&a, &reg.counter("a"));
  EXPECT_EQ(a.value(), 0u);
}

TEST(ObsRegistry, JsonExpositionShape) {
  Registry reg;
  reg.counter("serve.requests").add(3);
  reg.histogram("serve.ns").record(1000);
  reg.register_gauge_source("cache", [] {
    return std::vector<std::pair<std::string, double>>{{"hit_rate", 0.5}};
  });

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"schema\":\"hypercast-stats-v1\""), std::string::npos);
  EXPECT_NE(json.find("\"serve.requests\":3"), std::string::npos);
  EXPECT_NE(json.find("\"serve.ns\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
  EXPECT_NE(json.find("\"buckets\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_rate\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"trace_spans\""), std::string::npos);

  // Deterministic: two expositions of unchanged state are byte-identical.
  EXPECT_EQ(json, reg.to_json());

  reg.unregister_gauge_source("cache");
  EXPECT_EQ(reg.to_json().find("\"cache\""), std::string::npos);

  const std::string text = reg.format_text();
  EXPECT_NE(text.find("serve.requests"), std::string::npos);
  EXPECT_NE(text.find("serve.ns"), std::string::npos);
}

TEST(ObsFlags, GuardRestoresPriorState) {
  const bool stats_before = obs::stats_enabled();
  const bool tracing_before = obs::tracing_enabled();
  {
    obs::FlagsGuard guard;
    obs::set_stats_enabled(true);
    obs::set_tracing_enabled(true);
    // Under -DHYPERCAST_OBS_DISABLE the setters are no-ops and both
    // predicates stay constant false.
    EXPECT_EQ(obs::stats_enabled(), obs::kCompiled);
    EXPECT_EQ(obs::tracing_enabled(), obs::kCompiled);
  }
  EXPECT_EQ(obs::stats_enabled(), stats_before);
  EXPECT_EQ(obs::tracing_enabled(), tracing_before);
}

// --------------------------------------------------- simulator trace export

TEST(ObsSimTrace, ChromeJsonMapsWormPhases) {
  const Topology topo(4);
  sim::SimConfig config;
  config.cost = sim::CostModel::ncube2();
  config.port = sim::PortModel::all_port();
  config.message_bytes = 4096;
  config.record_trace = true;
  core::MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {12});
  s.add_send(8, 12, {});
  const auto result = sim::simulate_multicast(s, config);
  ASSERT_EQ(result.trace.messages.size(), 2u);
  EXPECT_EQ(result.trace.earliest_issue(), 0);

  const std::string json = result.trace.to_chrome_json(topo);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  // Four complete events per message on the destination's row...
  for (const char* phase : {"startup", "header", "body", "recv"}) {
    EXPECT_NE(json.find(std::string("\"name\":\"") + phase + "\""),
              std::string::npos)
        << phase;
  }
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":8"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":12"), std::string::npos);
  // ...plus thread_name metadata naming each destination node row.
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("node 1000"), std::string::npos);
  // Timestamps rebased to the earliest issue: the first startup is ts 0.
  EXPECT_NE(json.find("\"ts\":0"), std::string::npos);
}

// -------------------------------------------------- cache + pipeline wiring

TEST(ObsCacheStats, ForEachFieldIsTheCanonicalSchema) {
  coll::ScheduleCache::Stats stats;
  stats.hits = 3;
  stats.l1_hits = 2;
  stats.misses = 5;
  std::vector<std::string> names;
  stats.for_each_field([&](const char* name, double) { names.push_back(name); });
  const std::vector<std::string> expected{
      "hits",    "l1_hits", "misses",     "evictions", "invalidations",
      "entries", "bytes",   "total_hits", "lookups",   "hit_rate"};
  EXPECT_EQ(names, expected);
  stats.for_each_field([&](const char* name, double v) {
    const std::string field(name);
    if (field == "total_hits") {
      EXPECT_DOUBLE_EQ(v, 5.0);
    } else if (field == "lookups") {
      EXPECT_DOUBLE_EQ(v, 10.0);
    } else if (field == "hit_rate") {
      EXPECT_DOUBLE_EQ(v, 0.5);
    }
  });
}

TEST(ObsCacheStats, AttachDetachGaugeSource) {
  Registry reg;
  {
    coll::ScheduleCache cache;
    cache.attach_to_registry(reg, "cache");
    const std::string json = reg.to_json();
    EXPECT_NE(json.find("\"cache\""), std::string::npos);
    EXPECT_NE(json.find("\"hit_rate\""), std::string::npos);
    // The cache's destructor detaches the gauge source automatically.
  }
  EXPECT_EQ(reg.to_json().find("\"cache\""), std::string::npos);
}

TEST(ObsPipeline, ServeInstrumentsCountersAndSampledHistograms) {
  if (!obs::kCompiled) GTEST_SKIP() << "obs compiled out";
  obs::FlagsGuard flags;
  obs::Registry& reg = obs::default_registry();
  reg.reset();
  obs::set_stats_enabled(true);

  const Topology topo(6);
  workload::Rng rng(0x0b5eedull);
  const auto request = random_request(topo, 20, rng);
  const coll::ServePipeline pipeline(
      "wsort", std::make_shared<coll::ScheduleCache>());

  constexpr std::uint64_t kServes = 64;  // >= 4 sampled ticks at 1-in-16
  for (std::uint64_t i = 0; i < kServes; ++i) (void)pipeline.serve(request);
  obs::set_stats_enabled(false);

  EXPECT_EQ(reg.counter("serve.requests").value(), kServes);
  // Stage histograms are 1-in-16 sampled; 64 consecutive ticks contain
  // exactly 4 sample points, and all but possibly the first are cache
  // hits of the repeated request.
  EXPECT_GE(reg.histogram("serve.serve_ns").snapshot().count, 1u);
  // The first serve is a miss: its tree construction is timed
  // unconditionally (misses are rare and expensive, never sampled away).
  EXPECT_GE(reg.histogram("serve.build_ns").snapshot().count, 1u);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"serve.requests\":64"), std::string::npos);
}

}  // namespace
}  // namespace hypercast
