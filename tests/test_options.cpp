#include "harness/options.hpp"

#include <gtest/gtest.h>

namespace hypercast::harness {
namespace {

Options parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Options::parse(static_cast<int>(argv.size()), argv.data());
}

TEST(Options, ParsesKeyValuePairs) {
  const auto o = parse({"--n", "6", "--algo", "wsort"});
  EXPECT_EQ(o.get_int("n"), 6);
  EXPECT_EQ(o.get("algo"), "wsort");
  EXPECT_TRUE(o.has("n"));
  EXPECT_FALSE(o.has("m"));
}

TEST(Options, BareFlagsBecomeTrue) {
  const auto o = parse({"--quick", "--n", "4"});
  EXPECT_EQ(o.get("quick"), "true");
  EXPECT_EQ(o.get_int("n"), 4);
}

TEST(Options, DefaultsViaOrForms) {
  const auto o = parse({"--n", "4"});
  EXPECT_EQ(o.get_or("algo", "wsort"), "wsort");
  EXPECT_EQ(o.get_int_or("seed", 17), 17);
}

TEST(Options, MissingRequiredThrows) {
  const auto o = parse({"--n", "4"});
  EXPECT_THROW(o.get("algo"), std::invalid_argument);
  EXPECT_THROW(o.get_int("m"), std::invalid_argument);
}

TEST(Options, RejectsMalformedArguments) {
  EXPECT_THROW(parse({"n", "4"}), std::invalid_argument);
  EXPECT_THROW(parse({"--"}), std::invalid_argument);
}

TEST(Options, RepeatedKeysAccumulateAndLastWins) {
  // Multi-value style (--header k:v --header k:v) plus the "append an
  // override to a base command line" idiom: single-value getters read
  // the final occurrence.
  const auto o = parse({"--header", "a:1", "--n", "4", "--header=b:2",
                        "--n", "5", "--header", "c:3"});
  EXPECT_EQ(o.count("header"), 3u);
  EXPECT_EQ(o.get_all("header"),
            (std::vector<std::string>{"a:1", "b:2", "c:3"}));
  EXPECT_EQ(o.get("header"), "c:3");
  EXPECT_EQ(o.get_int("n"), 5);
  EXPECT_EQ(o.count("n"), 2u);
}

TEST(Options, GetAllOnMissingAndSingleKeys) {
  const auto o = parse({"--algo", "wsort"});
  EXPECT_TRUE(o.get_all("missing").empty());
  EXPECT_EQ(o.count("missing"), 0u);
  EXPECT_EQ(o.get_all("algo"), (std::vector<std::string>{"wsort"}));
}

TEST(Options, RepeatedBareAndValuedMix) {
  // Bare occurrences contribute "true"; is_bare_flag tracks the last
  // occurrence, so "--cache --cache off" parses as off and vice versa.
  const auto off = parse({"--cache", "--cache", "off"});
  EXPECT_FALSE(off.is_bare_flag("cache"));
  EXPECT_EQ(off.get("cache"), "off");
  EXPECT_EQ(off.get_all("cache"), (std::vector<std::string>{"true", "off"}));
  const auto on = parse({"--cache", "off", "--cache"});
  EXPECT_TRUE(on.is_bare_flag("cache"));
  EXPECT_EQ(on.get("cache"), "true");
}

TEST(Options, KeyEqualsValueSyntax) {
  const auto o = parse({"--n=6", "--label=fig09"});
  EXPECT_EQ(o.get_int("n"), 6);
  EXPECT_EQ(o.get("label"), "fig09");
  EXPECT_FALSE(o.is_bare_flag("n"));
}

TEST(Options, EqualsSyntaxAcceptsValuesStartingWithDashes) {
  // The escape hatch the space syntax cannot express: a value that
  // itself begins with "--".
  const auto o = parse({"--passthrough=--benchmark_filter=all", "--x=-2"});
  EXPECT_EQ(o.get("passthrough"), "--benchmark_filter=all");
  EXPECT_EQ(o.get_int("x"), -2);
}

TEST(Options, EqualsSyntaxAllowsEmptyValue) {
  const auto o = parse({"--out="});
  EXPECT_TRUE(o.has("out"));
  EXPECT_EQ(o.get("out"), "");
}

TEST(Options, EmptyKeyBeforeEqualsThrows) {
  EXPECT_THROW(parse({"--=5"}), std::invalid_argument);
}

TEST(Options, RepeatAcrossSyntaxes) {
  const auto o = parse({"--n", "4", "--n=5"});
  EXPECT_EQ(o.get_int("n"), 5);
  EXPECT_EQ(o.get_all("n"), (std::vector<std::string>{"4", "5"}));
}

TEST(Options, BareFlagRejectedByTypedGetters) {
  // "--n --quick": n swallows no value (next token is an option), so
  // asking for an integer must fail loudly instead of parsing "true".
  const auto o = parse({"--n", "--quick"});
  EXPECT_TRUE(o.is_bare_flag("n"));
  EXPECT_FALSE(o.is_bare_flag("missing"));
  EXPECT_THROW(o.get_int("n"), std::invalid_argument);
  EXPECT_THROW(o.get_double("n"), std::invalid_argument);
  EXPECT_EQ(o.get("n"), "true");  // untyped access still works
}

TEST(Options, RejectsNonIntegerInts) {
  const auto o = parse({"--n", "4x"});
  EXPECT_THROW(o.get_int("n"), std::invalid_argument);
}

TEST(Options, ParsesNodeLists) {
  const auto o = parse({"--dests", "1,3,12"});
  EXPECT_EQ(o.get_nodes("dests"),
            (std::vector<hcube::NodeId>{1, 3, 12}));
  const auto single = parse({"--dests", "7"});
  EXPECT_EQ(single.get_nodes("dests"), (std::vector<hcube::NodeId>{7}));
}

TEST(Options, RejectsBadNodeLists) {
  EXPECT_THROW(parse({"--dests", "1,,3"}).get_nodes("dests"),
               std::invalid_argument);
  EXPECT_THROW(parse({"--dests", "1,x"}).get_nodes("dests"),
               std::invalid_argument);
}

TEST(Options, ResolutionParsing) {
  EXPECT_EQ(parse({}).resolution(), hcube::Resolution::HighToLow);
  EXPECT_EQ(parse({"--res", "high"}).resolution(),
            hcube::Resolution::HighToLow);
  EXPECT_EQ(parse({"--res", "low"}).resolution(),
            hcube::Resolution::LowToHigh);
  EXPECT_THROW(parse({"--res", "sideways"}).resolution(),
               std::invalid_argument);
}

TEST(Options, PortParsing) {
  EXPECT_EQ(parse({}).port().kind, core::PortModel::Kind::AllPort);
  EXPECT_EQ(parse({"--port", "one"}).port().kind,
            core::PortModel::Kind::OnePort);
  const auto k = parse({"--port", "k:3"}).port();
  EXPECT_EQ(k.kind, core::PortModel::Kind::KPort);
  EXPECT_EQ(k.k, 3);
  EXPECT_THROW(parse({"--port", "k:0"}).port(), std::invalid_argument);
  EXPECT_THROW(parse({"--port", "none"}).port(), std::invalid_argument);
}

TEST(Options, KeysListsEverything) {
  const auto o = parse({"--a", "1", "--b", "2"});
  auto keys = o.keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace hypercast::harness
