// Golden tests for every worked example in the paper (Figures 3, 5, 6
// and 8). These pin the algorithms to the exact trees and step counts
// the text describes.

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "core/contention.hpp"
#include "core/separate.hpp"
#include "core/sf_tree.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast {
namespace {

using namespace testutil;
using core::PortModel;

/// Section 2 / Figure 3: source 0000, eight destinations in a 4-cube,
/// high-to-low address resolution.
class Figure3 : public ::testing::Test {
 protected:
  const Topology topo{4, Resolution::HighToLow};
  const MulticastRequest req{
      topo,
      0b0000,
      {0b0001, 0b0011, 0b0101, 0b0111, 0b1011, 0b1100, 0b1110, 0b1111}};
};

TEST_F(Figure3, UCubeTreeShape) {
  const auto s = core::ucube(req);
  EXPECT_TRUE(covers_exactly(s, req));
  // Algorithm 1 splits the chain {0;1,3,5,7,11,12,14,15} binarily.
  EXPECT_EQ(children_of(s, 0b0000),
            (std::vector<NodeId>{0b0111, 0b0011, 0b0001}));
  EXPECT_EQ(children_of(s, 0b0111), (std::vector<NodeId>{0b1100, 0b1011}));
  EXPECT_EQ(children_of(s, 0b1100), (std::vector<NodeId>{0b1110}));
  EXPECT_EQ(children_of(s, 0b1110), (std::vector<NodeId>{0b1111}));
  EXPECT_EQ(children_of(s, 0b0011), (std::vector<NodeId>{0b0101}));
}

TEST_F(Figure3, UCubeOnePortTakesFourSteps) {
  // Figure 3(c): four steps, the one-port optimum for 8 destinations.
  const auto s = core::ucube(req);
  const auto steps =
      core::assign_steps(s, PortModel::one_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
}

TEST_F(Figure3, UCubeAllPortStillTakesFourSteps) {
  // Figure 3(d): on an all-port cube U-cube still needs four steps; in
  // particular node 1011 is reached in step 3 because its unicast shares
  // the 0111->1111 channel with the step-2 unicast to 1100.
  const auto s = core::ucube(req);
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
  EXPECT_EQ(steps.arrival_step.at(0b1100), 2);
  EXPECT_EQ(steps.arrival_step.at(0b1011), 3);
  EXPECT_EQ(steps.arrival_step.at(0b1111), 4);
  // The early chain destinations are reached in step 1 (earlier than in
  // the one-port execution of Figure 3(c)).
  EXPECT_EQ(steps.arrival_step.at(0b0111), 1);
  EXPECT_EQ(steps.arrival_step.at(0b0011), 1);
  EXPECT_EQ(steps.arrival_step.at(0b0001), 1);
}

TEST_F(Figure3, WsortAchievesTheOptimalTwoSteps) {
  // Figure 3(e): a 2-step contention-free all-port tree exists, and the
  // paper notes it comes from the methods of the paper (W-sort).
  const auto s = core::wsort(req);
  EXPECT_TRUE(covers_exactly(s, req));
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 2);
  const auto report = core::check_contention(s, steps);
  EXPECT_TRUE(report.contention_free()) << report.summary(topo);
}

TEST_F(Figure3, StoreAndForwardInvolvesRelayProcessors) {
  // Figure 3(a): the store-and-forward tree needs non-destination
  // processors to relay (five of them in the paper's rendering; the
  // exact set depends on tie-breaking, so check the property).
  const auto s = core::sf_tree(req);
  EXPECT_TRUE(covers_at_least(s, req));
  const auto relays = s.relay_processors(req.destinations);
  EXPECT_FALSE(relays.empty());
  // Every hop in a store-and-forward tree is a single channel.
  for (const auto& u : s.unicasts()) {
    EXPECT_EQ(topo.distance(u.from, u.to), 1);
  }
}

TEST_F(Figure3, UnicastBasedTreesInvolveOnlyDestinationProcessors) {
  for (const char* name : {"ucube", "maxport", "combine", "wsort"}) {
    const auto s = core::find_algorithm(name).build(req);
    EXPECT_TRUE(s.relay_processors(req.destinations).empty()) << name;
  }
}

/// Figure 5: U-cube multicast chain from source 0100 in a 4-cube.
TEST(Figure5, UCubeChainAndTree) {
  const Topology topo(4, Resolution::HighToLow);
  const MulticastRequest req{
      topo,
      0b0100,
      {0b0001, 0b0011, 0b0101, 0b0111, 0b1000, 0b1010, 0b1011, 0b1111}};
  const auto s = core::ucube(req);
  EXPECT_TRUE(covers_exactly(s, req));
  // The d0-relative chain is {0;1,3,5,7,11,12,14,15}; Algorithm 1 gives:
  EXPECT_EQ(children_of(s, 0b0100),
            (std::vector<NodeId>{0b0011, 0b0111, 0b0101}));
  EXPECT_EQ(children_of(s, 0b0011), (std::vector<NodeId>{0b1000, 0b1111}));
  EXPECT_EQ(children_of(s, 0b1000), (std::vector<NodeId>{0b1010}));
  EXPECT_EQ(children_of(s, 0b1010), (std::vector<NodeId>{0b1011}));
  EXPECT_EQ(children_of(s, 0b0111), (std::vector<NodeId>{0b0001}));
  // "It takes 4 steps for all destination processors to receive the
  // message" on a one-port cube.
  const auto steps =
      core::assign_steps(s, PortModel::one_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
  // One-port U-cube is contention-free regardless of timing.
  EXPECT_TRUE(core::check_contention(s, steps).contention_free());
}

/// Figure 6: Maxport pathology — source 0000 to {1001, 1010, 1011}.
class Figure6 : public ::testing::Test {
 protected:
  const Topology topo{4, Resolution::HighToLow};
  const MulticastRequest req{topo, 0b0000, {0b1001, 0b1010, 0b1011}};
};

TEST_F(Figure6, MaxportNeedsThreeSteps) {
  const auto s = core::maxport(req);
  EXPECT_TRUE(covers_exactly(s, req));
  // All three destinations share the top subcube, so Maxport chains
  // them: 0000 -> 1001 -> 1010 -> 1011.
  EXPECT_EQ(children_of(s, 0b0000), (std::vector<NodeId>{0b1001}));
  EXPECT_EQ(children_of(s, 0b1001), (std::vector<NodeId>{0b1010}));
  EXPECT_EQ(children_of(s, 0b1010), (std::vector<NodeId>{0b1011}));
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 3);
}

TEST_F(Figure6, UCubeNeedsOnlyTwoSteps) {
  const auto s = core::ucube(req);
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 2);
}

TEST_F(Figure6, CombineMatchesUCubeHere) {
  // Combine takes max(highdim, center): the midpoint wins, avoiding the
  // Maxport chain.
  const auto s = core::combine(req);
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 2);
}

/// Figure 8: source 0, D = {1, 3, 5, 7, 11, 12, 14, 15} in a 4-cube.
class Figure8 : public ::testing::Test {
 protected:
  const Topology topo{4, Resolution::HighToLow};
  const MulticastRequest req{topo, 0, {1, 3, 5, 7, 11, 12, 14, 15}};
};

TEST_F(Figure8, UCubeOnAllPortNeedsFourSteps) {
  const auto s = core::ucube(req);
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
  // "node 7 cannot send to nodes 11 and 12 during the same time step,
  // since both unicasts require the same outgoing channel."
  EXPECT_EQ(children_of(s, 7), (std::vector<NodeId>{12, 11}));
  EXPECT_NE(steps.arrival_step.at(11), steps.arrival_step.at(12));
}

TEST_F(Figure8, MaxportAlsoNeedsFourStepsOnThisChain) {
  const auto s = core::maxport(req);
  EXPECT_TRUE(covers_exactly(s, req));
  // Maxport peels subcubes: 0 sends to {11, 5, 3, 1} on four distinct
  // channels, all in step 1, but 11 -> 12 -> 14 -> 15 chains up.
  EXPECT_EQ(children_of(s, 0), (std::vector<NodeId>{11, 5, 3, 1}));
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 4);
  // All unicasts with a common source go out in the same step.
  EXPECT_EQ(steps.arrival_step.at(11), 1);
  EXPECT_EQ(steps.arrival_step.at(5), 1);
  EXPECT_EQ(steps.arrival_step.at(3), 1);
  EXPECT_EQ(steps.arrival_step.at(1), 1);
}

TEST_F(Figure8, WeightedSortProducesThePaperChain) {
  const auto chain = core::wsort_chain(req);
  EXPECT_EQ(chain,
            (std::vector<NodeId>{0, 1, 3, 5, 7, 14, 15, 12, 11}));
}

TEST_F(Figure8, WsortNeedsOnlyTwoSteps) {
  const auto s = core::wsort(req);
  EXPECT_TRUE(covers_exactly(s, req));
  const auto steps =
      core::assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 2);
  const auto report = core::check_contention(s, steps);
  EXPECT_TRUE(report.contention_free()) << report.summary(topo);
}

TEST_F(Figure8, WsortTreeShape) {
  const auto s = core::wsort(req);
  // Step 1: 0 -> {14, 5, 3, 1}; step 2: 14 -> {11, 12, 15}, 5 -> 7.
  EXPECT_EQ(children_of(s, 0), (std::vector<NodeId>{14, 5, 3, 1}));
  EXPECT_EQ(children_of(s, 14), (std::vector<NodeId>{11, 12, 15}));
  EXPECT_EQ(children_of(s, 5), (std::vector<NodeId>{7}));
}

}  // namespace
}  // namespace hypercast
