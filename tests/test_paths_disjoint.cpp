// The disjoint-path subsystem (paths/disjoint.hpp, paths/repair.hpp):
// owner-constrained routing, the certified repairer's contract
// (disjointness by construction, owner-table commit semantics, the
// nullopt fallback signal), and the acceptance sweep — on 4- and 5-cubes
// every single-link fault yields a repaired striped family that
// core::verify_arc_disjoint proves pairwise arc-disjoint.

#include "paths/repair.hpp"

#include <algorithm>
#include <optional>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "coll/striped.hpp"
#include "core/ist.hpp"
#include "fault/fault_aware.hpp"
#include "hcube/bits.hpp"
#include "paths/disjoint.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;
using core::ArcOwnerTable;
using core::MulticastSchedule;
using hcube::Arc;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

std::vector<NodeId> broadcast_dests(const Topology& topo, NodeId source) {
  std::vector<NodeId> dests;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (u != source) dests.push_back(u);
  }
  return dests;
}

TEST(DisjointRoute, AvoidsClaimedArcsAndCertifiesInfeasibility) {
  const Topology topo(3);
  const fault::FaultSet no_faults(topo);
  ArcOwnerTable owners(topo);
  const NodeId src[1] = {0};

  // Free cube: the route 0 -> 7 is a shortest path (3 hops).
  auto path = paths::disjoint_route(topo, no_faults, owners, src, 7);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);

  // Claim every arc leaving 0 except dimension 2: the route must start
  // with the one free arc.
  ASSERT_TRUE(owners.try_claim(Arc{0, 0}, 9));
  ASSERT_TRUE(owners.try_claim(Arc{0, 1}, 9));
  path = paths::disjoint_route(topo, no_faults, owners, src, 7);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ((*path)[1], topo.neighbor(0, 2));
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    const Dim d = hcube::lowest_bit((*path)[i] ^ (*path)[i + 1]);
    EXPECT_LT(owners.owner(Arc{(*path)[i], d}), 0) << "hop " << i;
  }

  // Seal 0 completely: certified infeasible, not a crash.
  ASSERT_TRUE(owners.try_claim(Arc{0, 2}, 9));
  EXPECT_FALSE(paths::disjoint_route(topo, no_faults, owners, src, 7));

  // Many-to-one: a second holder restores feasibility.
  const NodeId both[2] = {0, 5};
  auto rescued = paths::disjoint_route(topo, no_faults, owners, both, 7);
  ASSERT_TRUE(rescued.has_value());
  EXPECT_EQ(rescued->front(), 5u);
}

TEST(DisjointRoute, RespectsFaultsAndBannedNodes) {
  const Topology topo(3);
  fault::FaultSet faults(topo);
  faults.fail_link(0, 0);  // kill 0 <-> 1
  ArcOwnerTable owners(topo);
  const NodeId src[1] = {0};
  auto path = paths::disjoint_route(topo, faults, owners, src, 1);
  ASSERT_TRUE(path.has_value());
  // 0 and 1 are at odd distance, so the shortest detour is 3 hops.
  EXPECT_EQ(path->size(), 4u);
  // Ban every candidate intermediate: 1 is only reachable via 3 or 5.
  std::vector<bool> banned(topo.num_nodes(), false);
  banned[3] = banned[5] = true;
  EXPECT_FALSE(paths::disjoint_route(topo, faults, owners, src, 1, &banned));
}

/// The repairer's owner-table contract: on success the table absorbs
/// exactly the repaired tree's footprint under `self`; on certified
/// failure it is untouched.
TEST(DisjointRepair, CommitsFootprintOnSuccessOnly) {
  const Topology topo(4);
  const NodeId source = 0;
  const auto dests = broadcast_dests(topo, source);
  fault::FaultSet faults(topo);
  faults.fail_link(0b0101, 1);  // interior link

  // Build the four trees; repair each damaged one against the others.
  std::vector<MulticastSchedule> trees;
  for (Dim t = 0; t < topo.dim(); ++t) {
    trees.push_back(core::build_ist_tree(topo, t, source, dests));
  }
  ArcOwnerTable owners(topo);
  std::vector<int> damaged;
  for (Dim t = 0; t < topo.dim(); ++t) {
    if (fault::blocked_unicasts(trees[t], faults) == 0) {
      owners.claim_schedule(trees[t], t);
    } else {
      damaged.push_back(t);
    }
  }
  // An interior link fault hits exactly two trees (one per direction).
  ASSERT_EQ(damaged.size(), 2u);
  const std::size_t before = owners.arcs_claimed();

  // Drop damaged[0] (its arcs stay free — the parity-drop scenario) and
  // disjoint-repair damaged[1] against the two untouched trees.
  const int target = damaged[1];
  auto res = paths::repair_disjoint(trees[target], dests, faults, owners,
                                    target);
  ASSERT_TRUE(res.has_value());
  EXPECT_GT(res->report.broken, 0u);
  EXPECT_EQ(res->report.rerouted, res->report.broken);
  res->schedule.finalize();
  EXPECT_TRUE(res->schedule.covers(dests));
  EXPECT_EQ(fault::blocked_unicasts(res->schedule, faults), 0u);
  // Success committed the repaired footprint under `target`.
  EXPECT_GT(owners.arcs_claimed(), before);

  std::vector<const MulticastSchedule*> family;
  for (Dim t = 0; t < topo.dim(); ++t) {
    if (std::find(damaged.begin(), damaged.end(), t) == damaged.end()) {
      family.push_back(&trees[t]);
    }
  }
  family.push_back(&res->schedule);
  const auto report = core::verify_arc_disjoint(
      topo, std::span<const MulticastSchedule* const>(family));
  EXPECT_TRUE(report.disjoint) << report.summary(topo);

  // Saturate the table: with every arc of the cube claimed by a
  // stranger, a damaged tree has no disjoint repair — nullopt, and the
  // claim count is unchanged (rollback).
  ArcOwnerTable full(topo);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (Dim d = 0; d < topo.dim(); ++d) {
      full.try_claim(Arc{u, d}, 99);
    }
  }
  const std::size_t all = full.arcs_claimed();
  EXPECT_FALSE(
      paths::repair_disjoint(trees[damaged[0]], dests, faults, full, 0));
  EXPECT_EQ(full.arcs_claimed(), all);
}

TEST(DisjointRepair, DeadDestinationThrowsUnrepairable) {
  const Topology topo(3);
  const NodeId source = 0;
  const auto dests = broadcast_dests(topo, source);
  fault::FaultSet faults(topo);
  faults.fail_node(5);
  const auto tree = core::build_ist_tree(topo, 0, source, dests);
  ArcOwnerTable owners(topo);
  EXPECT_THROW(paths::repair_disjoint(tree, dests, faults, owners, 0),
               fault::UnrepairableFault);
}

/// Acceptance sweep: for EVERY single-link fault of the 4- and 5-cube
/// broadcast, the striped planner's repaired schedule set is pairwise
/// arc-disjoint (owner-table verified), certified, and never falls back
/// to the greedy tier.
TEST(DisjointRepair, ExhaustiveSingleLinkFaultsStayDisjoint) {
  for (const Dim n : {Dim{4}, Dim{5}}) {
    const Topology topo(n);
    const NodeId source = 0;
    core::MulticastRequest request{topo, source,
                                   broadcast_dests(topo, source)};
    coll::StripeOptions options;
    options.parity = true;  // one parity tree: drop budget 1
    options.verify = coll::StripeOptions::Verify::kOn;
    const coll::StripedPlanner planner(options);

    for (NodeId u = 0; u < topo.num_nodes(); ++u) {
      for (Dim d = 0; d < n; ++d) {
        if (u & (NodeId{1} << d)) continue;  // canonical low endpoint
        fault::FaultSet faults(topo);
        faults.fail_link(u, d);
        const coll::StripedPlan plan =
            planner.plan(request, 1 << 20, faults);
        ASSERT_TRUE(plan.verified);
        ASSERT_TRUE(plan.certified_disjoint)
            << "n=" << int{n} << " link " << u << ":" << int{d};
        ASSERT_EQ(plan.repaired_greedy, 0u);
        // Redundant with plan verification, but assert it from the
        // outside too: the active trees share no directed arc.
        std::vector<const MulticastSchedule*> active;
        for (std::size_t t = 0; t < plan.trees.size(); ++t) {
          if (!plan.dropped(t)) active.push_back(plan.trees[t].get());
        }
        const auto report = core::verify_arc_disjoint(
            topo, std::span<const MulticastSchedule* const>(active));
        ASSERT_TRUE(report.disjoint)
            << "n=" << int{n} << " link " << u << ":" << int{d} << " — "
            << report.summary(topo);
        // And every active tree replays clean under the fault set.
        for (const auto* t : active) {
          ASSERT_EQ(fault::blocked_unicasts(*t, faults), 0u);
        }
      }
    }
  }
}

/// Zero drop budget on a full broadcast: certified disjoint repair of
/// the WHOLE family is provably impossible — the n spanning trees use
/// every directed arc except the n entering the root, and a detour
/// always costs more arcs than the single dead arc it releases. The
/// ladder does the best per-tree thing: the first damaged tree repairs
/// disjointly by borrowing the other damaged tree's (unclaimed) arcs,
/// which certifiably starves the second into the greedy tier —
/// certified_disjoint drops to false, nothing throws, delivery holds.
TEST(DisjointRepair, BroadcastWithoutParityFallsBackToGreedy) {
  const Topology topo(4);
  const NodeId source = 0;
  core::MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  coll::StripeOptions options;
  options.verify = coll::StripeOptions::Verify::kOn;
  const coll::StripedPlanner planner(options);

  fault::FaultSet faults(topo);
  faults.fail_link(0b0101, 1);  // interior: damages exactly two trees
  const coll::StripedPlan plan = planner.plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.dropped_tree, -1);
  EXPECT_FALSE(plan.certified_disjoint);
  EXPECT_EQ(plan.repaired_trees, 2u);
  EXPECT_GE(plan.repaired_greedy, 1u);
  EXPECT_TRUE(plan.verified);  // ran, and tolerated the uncertified plan
}

/// With a narrow destination set the pruned trees leave most of the
/// cube free, so even k = 0 damage repairs certified-disjoint.
TEST(DisjointRepair, PrunedTreesRepairDisjointWithoutParity) {
  const Topology topo(5);
  const NodeId source = 0;
  core::MulticastRequest request{topo, source, {3, 7, 21, 30}};
  coll::StripeOptions options;
  options.verify = coll::StripeOptions::Verify::kOn;
  const coll::StripedPlanner planner(options);

  const coll::StripedPlan clean = planner.plan(request, 1 << 20);
  // Find a link some tree actually uses away from the root, then fail it.
  std::optional<std::pair<NodeId, Dim>> victim;
  for (const auto& tree : clean.trees) {
    for (const core::Unicast& u : tree->unicasts()) {
      if (u.from == source || u.to == source) continue;
      const Dim d = hcube::lowest_bit(u.from ^ u.to);
      victim = {std::min(u.from, u.to), d};
      break;
    }
    if (victim) break;
  }
  ASSERT_TRUE(victim.has_value());
  fault::FaultSet faults(topo);
  faults.fail_link(victim->first, victim->second);

  const coll::StripedPlan plan = planner.plan(request, 1 << 20, faults);
  EXPECT_TRUE(plan.certified_disjoint);
  EXPECT_GE(plan.repaired_disjoint, 1u);
  EXPECT_EQ(plan.repaired_greedy, 0u);
  for (const auto& t : plan.trees) {
    EXPECT_TRUE(t->covers(request.destinations));
    EXPECT_EQ(fault::blocked_unicasts(*t, faults), 0u);
  }
}

}  // namespace
