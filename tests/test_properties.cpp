// Cross-algorithm randomized integration invariants: every algorithm,
// every port model, both resolution orders, random workloads.

#include <gtest/gtest.h>

#include "core/bounds.hpp"
#include "core/contention.hpp"
#include "core/reachable.hpp"
#include "core/wsort.hpp"
#include "sim/wormhole_sim.hpp"
#include "test_util.hpp"
#include "workload/patterns.hpp"

namespace hypercast {
namespace {

using namespace testutil;
using core::PortModel;

class AlgorithmMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, hcube::Dim, Resolution>> {
 protected:
  const core::AlgorithmEntry& algo() const {
    return core::find_algorithm(std::get<0>(GetParam()));
  }
  Topology topo() const {
    return Topology(std::get<1>(GetParam()), std::get<2>(GetParam()));
  }
};

TEST_P(AlgorithmMatrix, SchedulesAreValidAndCover) {
  const Topology topo = this->topo();
  workload::Rng rng(2001);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
    const auto req = random_request(topo, m, rng);
    const auto s = algo().build(req);
    EXPECT_NO_THROW(s.validate());
    EXPECT_TRUE(s.covers(req.destinations));
  }
}

TEST_P(AlgorithmMatrix, PayloadEqualsSubtree) {
  // The address field of every unicast is exactly the recipient's
  // reachable set minus itself (what the distributed algorithm needs).
  // The SF tree's address fields list only *destinations* while its
  // reachable sets also contain relay recipients, so it is exempt.
  if (algo().name == "sftree") GTEST_SKIP();
  const Topology topo = this->topo();
  workload::Rng rng(2003);
  for (int trial = 0; trial < 8; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    const auto s = algo().build(req);
    const auto reach = core::all_reachable_sets(s);
    for (const hcube::NodeId sender : s.senders()) {
      for (const core::Send& send : s.sends_from(sender)) {
        auto expected = reach.at(send.to);
        expected.erase(send.to);
        const std::unordered_set<hcube::NodeId> payload(
            send.payload.begin(), send.payload.end());
        EXPECT_EQ(payload, expected);
      }
    }
  }
}

TEST_P(AlgorithmMatrix, StepCountsRespectBounds) {
  const Topology topo = this->topo();
  workload::Rng rng(2011);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
    const auto req = random_request(topo, m, rng);
    const auto s = algo().build(req);
    const int one_port =
        core::assign_steps(s, PortModel::one_port(), req.destinations)
            .total_steps;
    const int all_port =
        core::assign_steps(s, PortModel::all_port(), req.destinations)
            .total_steps;
    const int two_port =
        core::assign_steps(s, PortModel::k_port(2), req.destinations)
            .total_steps;
    // More ports never hurt, fewer never help (same schedule).
    EXPECT_LE(all_port, two_port);
    EXPECT_LE(two_port, one_port);
    EXPECT_GE(all_port,
              core::all_port_step_lower_bound(m, std::max(1, topo.dim())));
  }
}

TEST_P(AlgorithmMatrix, SimulationDeliversEverythingOnAllPortModels) {
  const Topology topo = this->topo();
  workload::Rng rng(2017);
  for (const PortModel port :
       {PortModel::one_port(), PortModel::all_port(), PortModel::k_port(2)}) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    const auto s = algo().build(req);
    sim::SimConfig config;
    config.port = port;
    const auto result = sim::simulate_multicast(s, config);
    EXPECT_EQ(result.delivery.size(), s.num_unicasts());
    for (const hcube::NodeId d : req.destinations) {
      EXPECT_TRUE(result.delivery.contains(d));
      EXPECT_GT(result.delivery.at(d), 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AlgorithmMatrix,
    ::testing::Combine(::testing::Values("ucube", "maxport", "combine",
                                         "wsort", "separate", "sftree"),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_n" +
             std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

/// The resolution-order isomorphism at the schedule level: running any
/// chain algorithm under LowToHigh on bit-reversed inputs produces the
/// bit-reversed schedule of the HighToLow run.
TEST(Properties, ResolutionIsomorphismAtScheduleLevel) {
  workload::Rng rng(2027);
  const hcube::Dim n = 6;
  const Topology high(n, Resolution::HighToLow);
  const Topology low(n, Resolution::LowToHigh);
  for (const char* name : {"ucube", "maxport", "combine", "wsort"}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto req_high = random_request(high, 20, rng);
      core::MulticastRequest req_low{low, hcube::bit_reverse(req_high.source, n), {}};
      for (const auto d : req_high.destinations) {
        req_low.destinations.push_back(hcube::bit_reverse(d, n));
      }
      const auto& algo = core::find_algorithm(name);
      const auto s_high = algo.build(req_high);
      const auto s_low = algo.build(req_low);
      // Compare all sends under the bit-reversal mapping.
      const auto uh = s_high.unicasts();
      const auto ul = s_low.unicasts();
      ASSERT_EQ(uh.size(), ul.size()) << name;
      for (std::size_t i = 0; i < uh.size(); ++i) {
        EXPECT_EQ(hcube::bit_reverse(uh[i].from, n), ul[i].from) << name;
        EXPECT_EQ(hcube::bit_reverse(uh[i].to, n), ul[i].to) << name;
      }
    }
  }
}

/// XOR-translation equivariance: translating source and destinations by
/// a constant translates the whole schedule.
TEST(Properties, XorTranslationEquivariance) {
  workload::Rng rng(2029);
  const Topology topo(6);
  for (const char* name : {"ucube", "maxport", "combine", "wsort"}) {
    for (int trial = 0; trial < 10; ++trial) {
      const auto req = random_request(topo, 15, rng);
      const hcube::NodeId shift = static_cast<hcube::NodeId>(rng() % 64);
      core::MulticastRequest shifted{topo, req.source ^ shift, {}};
      for (const auto d : req.destinations) {
        shifted.destinations.push_back(d ^ shift);
      }
      const auto& algo = core::find_algorithm(name);
      const auto a = algo.build(req).unicasts();
      const auto b = algo.build(shifted).unicasts();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].from ^ shift, b[i].from) << name;
        EXPECT_EQ(a[i].to ^ shift, b[i].to) << name;
      }
    }
  }
}

/// Structured workloads: subcube-local and sphere destination sets also
/// produce clean contention-free W-sort schedules.
TEST(Properties, StructuredWorkloadsStayContentionFree) {
  const Topology topo(6);
  workload::Rng rng(2039);
  for (int trial = 0; trial < 10; ++trial) {
    const auto sub = workload::subcube_destinations(topo, 0, 4, 10, rng);
    const core::MulticastRequest req{topo, 0, sub};
    EXPECT_TRUE(core::check_contention(core::wsort(req),
                                       PortModel::all_port())
                    .contention_free());
  }
  for (int d = 1; d <= 6; ++d) {
    const auto sphere = workload::sphere_destinations(topo, 0, d);
    const core::MulticastRequest req{topo, 0, sphere};
    EXPECT_TRUE(core::check_contention(core::wsort(req),
                                       PortModel::all_port())
                    .contention_free());
    EXPECT_TRUE(core::check_contention(core::maxport(req),
                                       PortModel::all_port())
                    .contention_free());
  }
}

/// Delay in the simulator is consistent with the stepwise model for
/// Maxport: more steps means (weakly) more simulated delay.
TEST(Properties, StepsAndSimulatedDelayAgreeForMaxport) {
  const Topology topo(6);
  workload::Rng rng(2053);
  sim::SimConfig config;
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 1 + rng() % 60;
    const auto req = random_request(topo, m, rng);
    const auto s = core::maxport(req);
    const auto steps =
        core::assign_steps(s, PortModel::all_port(), req.destinations);
    const auto result = sim::simulate_multicast(s, config);
    // Maxport arrival step == tree depth; each level costs at least
    // startup + body and at most (n+1) startups + hops + body + recv.
    const auto info = core::tree_info(s);
    for (const hcube::NodeId dst : req.destinations) {
      const auto depth = info.depth.at(dst);
      const sim::SimTime lower =
          depth * (config.cost.send_startup +
                   config.cost.body_time(config.message_bytes));
      EXPECT_GE(result.delay(dst), lower);
    }
  }
}

}  // namespace
}  // namespace hypercast
