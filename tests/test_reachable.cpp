#include "core/reachable.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

MulticastSchedule small_tree() {
  //        0
  //      .-+-.
  //     4     2
  //    .+.
  //   5   6
  //       |
  //       7
  MulticastSchedule s(Topology(3), 0);
  s.add_send(0, 4, {5, 6, 7});
  s.add_send(0, 2, {});
  s.add_send(4, 5, {});
  s.add_send(4, 6, {7});
  s.add_send(6, 7, {});
  return s;
}

TEST(Reachable, Definition3Examples) {
  const auto s = small_tree();
  EXPECT_EQ(reachable_set(s, 0),
            (std::unordered_set<NodeId>{0, 4, 2, 5, 6, 7}));
  EXPECT_EQ(reachable_set(s, 4), (std::unordered_set<NodeId>{4, 5, 6, 7}));
  EXPECT_EQ(reachable_set(s, 6), (std::unordered_set<NodeId>{6, 7}));
  EXPECT_EQ(reachable_set(s, 2), (std::unordered_set<NodeId>{2}));
  // A node outside the multicast reaches only itself.
  EXPECT_EQ(reachable_set(s, 3), (std::unordered_set<NodeId>{3}));
}

TEST(Reachable, AllReachableSetsMatchSingleQueries) {
  const Topology topo(6);
  workload::Rng rng(701);
  for (int trial = 0; trial < 10; ++trial) {
    const auto req = random_request(topo, 25, rng);
    const auto s = ucube(req);
    const auto all = all_reachable_sets(s);
    EXPECT_EQ(all.at(req.source), reachable_set(s, req.source));
    for (const NodeId r : s.recipients()) {
      EXPECT_EQ(all.at(r), reachable_set(s, r)) << "node " << r;
    }
  }
}

TEST(Reachable, SubtreeSizesAreConsistent) {
  // |R_u| = 1 + sum of children's |R_c|.
  const Topology topo(6);
  workload::Rng rng(709);
  const auto req = random_request(topo, 30, rng);
  const auto s = maxport(req);
  const auto all = all_reachable_sets(s);
  for (const auto& [node, set] : all) {
    std::size_t expected = 1;
    for (const Send& send : s.sends_from(node)) {
      expected += all.at(send.to).size();
    }
    EXPECT_EQ(set.size(), expected);
  }
}

TEST(TreeInfo, DepthAndParent) {
  const auto s = small_tree();
  const auto info = tree_info(s);
  EXPECT_EQ(info.depth.at(0), 0);
  EXPECT_EQ(info.depth.at(4), 1);
  EXPECT_EQ(info.depth.at(2), 1);
  EXPECT_EQ(info.depth.at(5), 2);
  EXPECT_EQ(info.depth.at(7), 3);
  EXPECT_EQ(info.height, 3);
  EXPECT_EQ(info.parent.at(7), 6u);
  EXPECT_EQ(info.parent.at(4), 0u);
  EXPECT_FALSE(info.parent.contains(0));
}

TEST(TreeInfo, EmptySchedule) {
  MulticastSchedule s(Topology(3), 2);
  const auto info = tree_info(s);
  EXPECT_EQ(info.height, 0);
  EXPECT_EQ(info.depth.at(2), 0);
  EXPECT_TRUE(info.parent.empty());
}

}  // namespace
}  // namespace hypercast::core
