#include "coll/reduce.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::coll {
namespace {

using namespace testutil;
using core::Send;
using sim::SimTime;

ReduceConfig basic_config() {
  ReduceConfig c;
  c.block_bytes = 4096;
  c.combine_ns_per_byte = 2;
  return c;
}

TEST(Reduce, SingleLeafMatchesClosedForm) {
  // One participant at distance 2: leaf sends at t = startup; root
  // folds after recv + combine.
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 0b1100, {});
  const auto config = basic_config();
  const auto result = simulate_reduce(tree, config);
  const SimTime expected =
      config.cost.send_startup + 2 * config.cost.per_hop +
      config.cost.body_time(4096) + config.cost.recv_overhead +
      4096 * config.combine_ns_per_byte;
  EXPECT_EQ(result.completion, expected);
  EXPECT_EQ(result.stats.messages, 1u);
  EXPECT_EQ(result.send_time.at(0b1100), config.cost.send_startup);
}

TEST(Reduce, EmptyTreeCompletesAtZero) {
  const Topology topo(3);
  core::MulticastSchedule tree(topo, 5);
  const auto result = simulate_reduce(tree, basic_config());
  EXPECT_EQ(result.completion, 0);
  EXPECT_EQ(result.stats.messages, 0u);
}

TEST(Reduce, ChainFoldsSequentially) {
  // 0 <- 8 <- 12: node 12 is a leaf; 8 folds 12's block then forwards.
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 8, {12});
  tree.add_send(8, 12, {});
  const auto config = basic_config();
  const auto result = simulate_reduce(tree, config);
  const SimTime combine = 4096 * config.combine_ns_per_byte;
  const SimTime leg_12_to_8 = config.cost.send_startup + config.cost.per_hop +
                              config.cost.body_time(4096) +
                              config.cost.recv_overhead + combine;
  const SimTime expected = leg_12_to_8 + config.cost.send_startup +
                           config.cost.per_hop + config.cost.body_time(4096) +
                           config.cost.recv_overhead + combine;
  EXPECT_EQ(result.completion, expected);
}

TEST(Reduce, RootWaitsForAllChildren) {
  // Two children at different distances: completion gated by the slow
  // one plus its fold.
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 1, {});       // 1 hop
  tree.add_send(0, 0b1110, {});  // 3 hops, arrives later
  const auto config = basic_config();
  const auto result = simulate_reduce(tree, config);
  const SimTime combine = 4096 * config.combine_ns_per_byte;
  // Both leaves send at startup. The 1-hop tail arrives first and is
  // folded; the 3-hop tail arrives 2 hops later but must additionally
  // wait for the root's CPU to finish the first fold.
  const SimTime fast_tail = config.cost.send_startup + config.cost.per_hop +
                            config.cost.body_time(4096);
  const SimTime slow_tail = fast_tail + 2 * config.cost.per_hop;
  const SimTime first_fold = fast_tail + config.cost.recv_overhead + combine;
  EXPECT_EQ(result.completion, std::max(first_fold, slow_tail) +
                                   config.cost.recv_overhead + combine);
}

TEST(Reduce, GatherModeGrowsMessages) {
  // 0 <- 8 <- 12 in gather mode: 12 sends one block, 8 sends two.
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 8, {12});
  tree.add_send(8, 12, {});
  ReduceConfig config = basic_config();
  config.mode = ReduceConfig::Mode::Gather;
  config.record_trace = true;
  const auto result = simulate_reduce(tree, config);
  ASSERT_EQ(result.trace.messages.size(), 2u);
  // Identify the 8 -> 0 message: it carries 2 blocks (tail - path
  // acquisition = body time of 2 * 4096 bytes).
  for (const auto& m : result.trace.messages) {
    const SimTime body = m.tail - m.path_acquired;
    if (m.from == 8u) {
      EXPECT_EQ(body, config.cost.body_time(2 * 4096));
    } else {
      EXPECT_EQ(body, config.cost.body_time(4096));
    }
  }
}

TEST(Reduce, GatherCompletionExceedsCombine) {
  const Topology topo(6);
  workload::Rng rng(4001);
  const auto req = random_request(topo, 20, rng);
  const auto tree = core::wsort(req);
  ReduceConfig combine_cfg = basic_config();
  ReduceConfig gather_cfg = basic_config();
  gather_cfg.mode = ReduceConfig::Mode::Gather;
  EXPECT_GT(simulate_reduce(tree, gather_cfg).completion,
            simulate_reduce(tree, combine_cfg).completion);
}

TEST(Reduce, EveryParticipantSendsExactlyOnce) {
  const Topology topo(6);
  workload::Rng rng(4003);
  for (int trial = 0; trial < 10; ++trial) {
    const auto req = random_request(topo, 25, rng);
    const auto tree = core::maxport(req);
    const auto result = simulate_reduce(tree, basic_config());
    EXPECT_EQ(result.stats.messages, req.destinations.size());
    for (const NodeId d : req.destinations) {
      EXPECT_TRUE(result.send_time.contains(d));
    }
    EXPECT_FALSE(result.send_time.contains(req.source));
    EXPECT_GT(result.completion, 0);
  }
}

TEST(Reduce, ReverseTreesCanBlock) {
  // The routing asymmetry: sibling messages converging on a parent can
  // share arcs (E-cube paths to one destination form an in-tree), so
  // reductions over reverse multicast trees are not contention-free in
  // general. This pinned example: leaves 0011 and 0001 both reduce to
  // 0000; P(0011,0000) = 0011 -> 0001 -> 0000 shares arc (0001, 0)
  // with P(0001, 0000).
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 0b0011, {});
  tree.add_send(0, 0b0001, {});
  const auto result = simulate_reduce(tree, basic_config());
  EXPECT_GE(result.stats.blocked_acquisitions, 1u);
}

TEST(Reduce, DeterministicReplay) {
  const Topology topo(8);
  workload::Rng rng(4007);
  const auto req = random_request(topo, 60, rng);
  const auto tree = core::wsort(req);
  const auto a = simulate_reduce(tree, basic_config());
  const auto b = simulate_reduce(tree, basic_config());
  EXPECT_EQ(a.completion, b.completion);
  EXPECT_EQ(a.stats.blocked_acquisitions, b.stats.blocked_acquisitions);
}

TEST(Reduce, OnePortSlowerThanAllPort) {
  const Topology topo(6);
  workload::Rng rng(4013);
  const auto req = random_request(topo, 30, rng);
  const auto tree = core::wsort(req);
  ReduceConfig all = basic_config();
  ReduceConfig one = basic_config();
  one.port = core::PortModel::one_port();
  EXPECT_LE(simulate_reduce(tree, all).completion,
            simulate_reduce(tree, one).completion);
}

}  // namespace
}  // namespace hypercast::coll
