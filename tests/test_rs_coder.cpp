// GF(2^8) arithmetic (code/gf256.hpp) and the systematic Reed-Solomon
// erasure coder (code/rs.hpp): field identities against first
// principles, the legacy-XOR contract of the single-parity row, the MDS
// property over every erasure pattern of small codes, and randomized
// round-trip fuzz at the shapes the striped planner actually uses.

#include "code/rs.hpp"

#include <bit>
#include <cstdint>
#include <numeric>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "code/gf256.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;
using code::RsCode;

/// Reference multiply: shift-and-add modulo 0x11d, no tables.
std::uint8_t slow_mul(std::uint8_t a, std::uint8_t b) {
  unsigned acc = 0;
  unsigned aa = a;
  for (unsigned bb = b; bb != 0; bb >>= 1) {
    if (bb & 1) acc ^= aa;
    aa <<= 1;
    if (aa & 0x100) aa ^= 0x11d;
  }
  return static_cast<std::uint8_t>(acc);
}

TEST(Gf256, MulMatchesShiftAndAddReference) {
  for (unsigned a = 0; a < 256; ++a) {
    for (unsigned b = 0; b < 256; ++b) {
      ASSERT_EQ(code::gf_mul(static_cast<std::uint8_t>(a),
                             static_cast<std::uint8_t>(b)),
                slow_mul(static_cast<std::uint8_t>(a),
                         static_cast<std::uint8_t>(b)))
          << a << " * " << b;
    }
  }
}

TEST(Gf256, FieldIdentities) {
  for (unsigned a = 0; a < 256; ++a) {
    const auto x = static_cast<std::uint8_t>(a);
    EXPECT_EQ(code::gf_mul(x, 1), x);
    EXPECT_EQ(code::gf_mul(x, 0), 0);
    if (a != 0) {
      // Every nonzero element has an inverse and division round-trips.
      EXPECT_EQ(code::gf_mul(x, code::gf_inv(x)), 1) << a;
      EXPECT_EQ(code::gf_div(x, x), 1);
      EXPECT_EQ(code::gf_mul(code::gf_div(x, 7), 7), x);
    }
  }
  // 2 generates the multiplicative group: 255 distinct powers.
  std::vector<bool> seen(256, false);
  std::uint8_t p = 1;
  for (int i = 0; i < 255; ++i) {
    ASSERT_FALSE(seen[p]) << "generator cycle shorter than 255 at " << i;
    seen[p] = true;
    p = code::gf_mul(p, 2);
  }
  EXPECT_EQ(p, 1);  // full cycle
  EXPECT_EQ(code::gf_pow(2, 255), 1);
  EXPECT_EQ(code::gf_pow(0, 0), 1);
  EXPECT_EQ(code::gf_pow(0, 5), 0);
}

TEST(Gf256, AddmulAndMulRowMatchScalarLoop) {
  workload::Rng rng(0x6f256);
  std::vector<std::uint8_t> src(257), dst(257), expect(257);
  for (auto& b : src) b = static_cast<std::uint8_t>(rng());
  for (const std::uint8_t c : {0, 1, 2, 29, 255}) {
    for (std::size_t i = 0; i < dst.size(); ++i) {
      dst[i] = static_cast<std::uint8_t>(i * 31);
      expect[i] = dst[i] ^ code::gf_mul(c, src[i]);
    }
    code::gf_addmul(dst.data(), src.data(), c, dst.size());
    EXPECT_EQ(dst, expect) << "addmul c=" << int{c};
    code::gf_mul_row(dst.data(), src.data(), c, dst.size());
    for (std::size_t i = 0; i < dst.size(); ++i) {
      ASSERT_EQ(dst[i], code::gf_mul(c, src[i])) << "mul_row c=" << int{c};
    }
  }
}

std::vector<std::vector<std::uint8_t>> random_stripes(std::size_t m,
                                                      std::size_t width,
                                                      workload::Rng& rng) {
  std::vector<std::vector<std::uint8_t>> data(m);
  for (auto& s : data) {
    s.resize(width);
    for (auto& b : s) b = static_cast<std::uint8_t>(rng());
  }
  return data;
}

TEST(RsCode, SingleParityRowIsPlainXor) {
  workload::Rng rng(0x1234);
  const std::size_t width = 100;
  const auto data = random_stripes(5, width, rng);
  std::vector<std::vector<std::uint8_t>> parity;
  RsCode(5, 1).encode(data, parity, width);
  ASSERT_EQ(parity.size(), 1u);
  ASSERT_EQ(parity[0].size(), width);
  for (std::size_t i = 0; i < width; ++i) {
    std::uint8_t x = 0;
    for (const auto& s : data) x ^= s[i];
    ASSERT_EQ(parity[0][i], x) << "byte " << i;
  }
}

TEST(RsCode, RejectsBadShapes) {
  EXPECT_THROW(RsCode(0, 1), std::invalid_argument);
  EXPECT_THROW(RsCode(250, 7), std::invalid_argument);
  RsCode ok(4, 2);
  std::vector<std::vector<std::uint8_t>> stripes(6,
                                                 std::vector<std::uint8_t>(8));
  // Three erasures against k = 2.
  const std::size_t three[3] = {0, 1, 2};
  EXPECT_THROW(ok.reconstruct(stripes, three, 8), std::invalid_argument);
  // Repeated / out-of-range indices.
  const std::size_t dup[2] = {1, 1};
  EXPECT_THROW(ok.reconstruct(stripes, dup, 8), std::invalid_argument);
  const std::size_t oob[1] = {6};
  EXPECT_THROW(ok.reconstruct(stripes, oob, 8), std::invalid_argument);
}

/// Exhaustive MDS check: for (m, k) small, EVERY way of losing up to k
/// of the m + k stripes must reconstruct the data exactly.
TEST(RsCode, EveryErasurePatternUpToKRecovers) {
  workload::Rng rng(0xec0de);
  constexpr std::pair<std::size_t, std::size_t> kShapes[] = {
      {4, 2}, {3, 3}, {5, 2}, {2, 4}};
  for (const auto& [m, k] : kShapes) {
    const std::size_t width = 33;
    const RsCode rs(m, k);
    const auto data = random_stripes(m, width, rng);
    std::vector<std::vector<std::uint8_t>> parity;
    rs.encode(data, parity, width);
    ASSERT_EQ(parity.size(), k);

    std::vector<std::vector<std::uint8_t>> full = data;
    for (const auto& p : parity) full.push_back(p);
    const std::size_t total = m + k;
    // Every subset of [0, m + k) with |S| <= k, by bitmask.
    for (std::uint32_t mask = 0; mask < (1u << total); ++mask) {
      if (static_cast<std::size_t>(std::popcount(mask)) > k) continue;
      std::vector<std::size_t> missing;
      auto stripes = full;
      for (std::size_t i = 0; i < total; ++i) {
        if (mask & (1u << i)) {
          missing.push_back(i);
          stripes[i].clear();  // simulate the loss
        }
      }
      rs.reconstruct(stripes, missing, width);
      for (std::size_t j = 0; j < m; ++j) {
        ASSERT_EQ(stripes[j], data[j])
            << "m=" << m << " k=" << k << " mask=" << mask << " stripe " << j;
      }
    }
  }
}

/// Randomized fuzz at planner shapes: (m, k) with m + k = n for cube
/// dimensions up to 10, random widths (including 0 and tiny), random
/// erasures of exactly k stripes.
TEST(RsCode, RandomizedRoundTripFuzz) {
  workload::Rng rng(0xf0221);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t n = 2 + rng() % 9;           // 2..10 trees
    const std::size_t k = 1 + rng() % (n - 1);     // 1..n-1 parity
    const std::size_t m = n - k;
    const std::size_t width = rng() % 130;         // 0..129 bytes
    const RsCode rs(m, k);
    const auto data = random_stripes(m, width, rng);
    std::vector<std::vector<std::uint8_t>> stripes = data;
    {
      std::vector<std::vector<std::uint8_t>> parity;
      rs.encode(data, parity, width);
      for (auto& p : parity) stripes.push_back(std::move(p));
    }
    // Lose exactly k distinct random stripes.
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + rng() % (n - i)]);
    }
    std::vector<std::size_t> missing(all.begin(),
                                     all.begin() + static_cast<long>(k));
    for (const std::size_t i : missing) stripes[i].clear();
    rs.reconstruct(stripes, missing, width);
    for (std::size_t j = 0; j < m; ++j) {
      ASSERT_EQ(stripes[j], data[j])
          << "trial " << trial << " n=" << n << " k=" << k
          << " width=" << width;
    }
  }
}

}  // namespace
