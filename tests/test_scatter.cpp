#include "coll/scatter.hpp"

#include <gtest/gtest.h>

#include "coll/collectives.hpp"
#include "coll/reduce.hpp"
#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "test_util.hpp"

namespace hypercast::coll {
namespace {

using namespace testutil;
using core::Send;
using sim::SimTime;

TEST(Scatter, SingleDestinationIsAUnicastOfOneBlock) {
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 0b0110, {});
  ScatterConfig config;
  const auto result = simulate_scatter(tree, config);
  EXPECT_EQ(result.delay(0b0110),
            config.cost.unicast_latency(2, config.block_bytes));
}

TEST(Scatter, BundlesShrinkDownTheTree) {
  // 0 -> 8 carries {8's, 12's} blocks; 8 -> 12 carries only 12's.
  const Topology topo(4);
  core::MulticastSchedule tree(topo, 0);
  tree.add_send(0, 8, {12});
  tree.add_send(8, 12, {});
  ScatterConfig config;
  config.record_trace = true;
  const auto result = simulate_scatter(tree, config);
  ASSERT_EQ(result.trace.messages.size(), 2u);
  for (const auto& m : result.trace.messages) {
    const SimTime body = m.tail - m.path_acquired;
    if (m.from == 0u) {
      EXPECT_EQ(body, config.cost.body_time(2 * config.block_bytes));
    } else {
      EXPECT_EQ(body, config.cost.body_time(config.block_bytes));
    }
  }
}

TEST(Scatter, CostsMoreThanPlainMulticastOfOneBlock) {
  // The bundles on early links are larger than one block, so scatter
  // cannot beat the same tree multicasting one block.
  const Topology topo(6);
  workload::Rng rng(9101);
  const auto req = random_request(topo, 20, rng);
  const auto tree = core::wsort(req);
  ScatterConfig sconfig;
  sim::SimConfig mconfig;
  mconfig.message_bytes = sconfig.block_bytes;
  const auto scatter = simulate_scatter(tree, sconfig);
  const auto multicast = sim::simulate_multicast(tree, mconfig);
  for (const NodeId d : req.destinations) {
    EXPECT_GE(scatter.delay(d), multicast.delay(d)) << "dest " << d;
  }
}

TEST(Scatter, RootSendsEveryBlockExactlyOnce) {
  // Total bytes leaving the root = m blocks, however the tree splits.
  const Topology topo(6);
  workload::Rng rng(9103);
  const auto req = random_request(topo, 25, rng);
  const auto tree = core::maxport(req);
  ScatterConfig config;
  config.record_trace = true;
  const auto result = simulate_scatter(tree, config);
  SimTime root_bytes_time = 0;
  for (const auto& m : result.trace.messages) {
    if (m.from == req.source) root_bytes_time += m.tail - m.path_acquired;
  }
  EXPECT_EQ(root_bytes_time,
            config.cost.body_time(25 * config.block_bytes));
}

TEST(Scatter, GatherDualityOnTheSameTree) {
  // Scatter (down) and gather (up) move the same bytes over the same
  // tree; with symmetric costs their completions are within the
  // software-overhead difference of each other (gather pays per-child
  // receive overheads at interior nodes, scatter pays per-child send
  // startups).
  const Topology topo(6);
  workload::Rng rng(9107);
  const auto req = random_request(topo, 20, rng);
  const auto tree = core::wsort(req);
  ScatterConfig sconfig;
  ReduceConfig gconfig;
  gconfig.mode = ReduceConfig::Mode::Gather;
  gconfig.block_bytes = sconfig.block_bytes;
  const auto down = simulate_scatter(tree, sconfig);
  const auto up = simulate_reduce(tree, gconfig);
  const double ratio = static_cast<double>(up.completion) /
                       static_cast<double>(down.max_delay());
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(Scatter, FacadeMatchesDirectSimulation) {
  Collectives::Options options;
  options.topo = Topology(6);
  const Collectives comm(options);
  workload::Rng rng(9109);
  const auto req = random_request(options.topo, 15, rng);
  const auto via_facade = comm.scatter(req.source, req.destinations, 4096);
  const auto tree = comm.plan(req.source, req.destinations);
  ScatterConfig config;
  const auto direct = simulate_scatter(tree, config);
  for (const NodeId d : req.destinations) {
    EXPECT_EQ(via_facade.delay(d), direct.delay(d));
  }
}

TEST(Scatter, EmptyTreeIsANoop) {
  core::MulticastSchedule tree(Topology(4), 3);
  const auto result = simulate_scatter(tree, ScatterConfig{});
  EXPECT_TRUE(result.delivery.empty());
  EXPECT_EQ(result.max_delay(), 0);
}

TEST(Scatter, DeterministicReplay) {
  const Topology topo(7);
  workload::Rng rng(9113);
  const auto req = random_request(topo, 50, rng);
  const auto tree = core::combine(req);
  const auto a = simulate_scatter(tree, ScatterConfig{});
  const auto b = simulate_scatter(tree, ScatterConfig{});
  for (const auto& [node, t] : a.delivery) {
    EXPECT_EQ(b.delivery.at(node), t);
  }
}

}  // namespace
}  // namespace hypercast::coll
