// The schedule-serving cache: canonical keys, the two-level (relative +
// materialized-translation) LRU, fault-epoch invalidation, and the
// bit-identical guarantee — cached serving returns schedules equal
// (MulticastSchedule::operator==) to direct construction, sequentially,
// in batches, and under a multi-threaded hammer with concurrent
// invalidation.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "core/cache_key.hpp"
#include "fault/fault_aware.hpp"
#include "fault/fault_set.hpp"
#include "test_util.hpp"
#include "workload/random_sets.hpp"

namespace hypercast {
namespace {

using namespace testutil;
using coll::ScheduleCache;
using coll::ServePipeline;
using core::CacheKey;

constexpr std::uint64_t kSeed = 0x5ca1ab1e5eedull;

CacheKey key_of(const core::MulticastRequest& req, std::uint8_t algo = 0,
                bool absolute = false) {
  CacheKey key;
  core::canonical_key_into(req.topo, req.source, req.destinations, algo,
                           absolute, kSeed, key);
  return key;
}

// ---- canonical keys ------------------------------------------------------

TEST(CacheKey, ValidatesLikeRequestValidate) {
  // Dense chains take the bitmap counting-sort path...
  const Topology small(4, Resolution::HighToLow);
  EXPECT_THROW(key_of({small, 3, {1, 2, 3}}), std::invalid_argument);
  EXPECT_THROW(key_of({small, 0, {5, 7, 5}}), std::invalid_argument);
  EXPECT_THROW(key_of({small, 0, {1, 99}}), std::invalid_argument);
  EXPECT_THROW(key_of({small, 99, {1, 2}}), std::invalid_argument);
  // ...sparse chains on a big cube take the comparison-sort path.
  const Topology big(10, Resolution::HighToLow);
  EXPECT_THROW(key_of({big, 3, {1, 2, 3}}), std::invalid_argument);
  EXPECT_THROW(key_of({big, 0, {5, 7, 5}}), std::invalid_argument);
  EXPECT_THROW(key_of({big, 0, {1, 4096}}), std::invalid_argument);
  EXPECT_NO_THROW(key_of({big, 0, {1, 2, 3}}));
}

TEST(CacheKey, WordsAreSortedRelativeKeys) {
  const Topology topo(4, Resolution::HighToLow);
  const auto key = key_of({topo, 5, {1, 12, 7}});
  // Relative keys: 1^5=4, 12^5=9, 7^5=2 -> sorted {2, 4, 9}.
  EXPECT_EQ(key.words, (std::vector<std::uint32_t>{2, 4, 9}));
  EXPECT_EQ(key.source, 0u);  // relative identity drops the source
}

TEST(CacheKey, TranslationInvariantIdentity) {
  // (u, D) and (0, u ^ D) canonicalize to the same relative key, for
  // both resolution orders and any destination order.
  for (const Resolution res :
       {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(6, res);
    workload::Rng rng(77);
    for (int trial = 0; trial < 30; ++trial) {
      const auto req = random_request(topo, 1 + rng() % 40, rng);
      core::MulticastRequest rel{topo, 0, {}};
      for (const NodeId d : req.destinations) {
        rel.destinations.push_back(static_cast<NodeId>(d ^ req.source));
      }
      std::reverse(rel.destinations.begin(), rel.destinations.end());
      const auto a = key_of(req);
      const auto b = key_of(rel);
      EXPECT_TRUE(a == b);
      EXPECT_EQ(a.hash, b.hash);
    }
  }
}

TEST(CacheKey, RekeySwitchesIdentityCheaply) {
  const Topology topo(6, Resolution::HighToLow);
  auto key = key_of({topo, 9, {1, 2, 3}}, /*algo=*/3, /*absolute=*/true);
  EXPECT_TRUE(key.absolute);
  EXPECT_EQ(key.source, 9u);
  const auto absolute_hash = key.hash;

  core::rekey(key, /*absolute=*/false, 0);
  EXPECT_FALSE(key.absolute);
  EXPECT_EQ(key.source, 0u);
  EXPECT_NE(key.hash, absolute_hash);
  EXPECT_TRUE(key == key_of({topo, 9, {1, 2, 3}}, 3, false));

  core::rekey(key, /*absolute=*/true, 9);
  EXPECT_EQ(key.hash, absolute_hash);
}

TEST(CacheKey, DistinctIdentitiesDoNotCollide) {
  const Topology topo(6, Resolution::HighToLow);
  const core::MulticastRequest req{topo, 0, {1, 2, 3}};
  const auto base = key_of(req, 0, false);
  EXPECT_FALSE(base == key_of(req, 1, false));             // algorithm
  EXPECT_FALSE(base == key_of(req, 0, true));              // absolute bit
  const Topology low(6, Resolution::LowToHigh);
  EXPECT_FALSE(base == key_of({low, 0, {1, 2, 3}}, 0, false));  // resolution
  const Topology seven(7, Resolution::HighToLow);
  EXPECT_FALSE(base == key_of({seven, 0, {1, 2, 3}}, 0, false));  // dim
}

// ---- the cache proper ----------------------------------------------------

std::shared_ptr<const core::MulticastSchedule> build_wsort(
    const core::MulticastRequest& req) {
  return ServePipeline("wsort", nullptr).serve(req);
}

TEST(ScheduleCache, MissPutHitAndL1) {
  ScheduleCache cache;
  const Topology topo(6, Resolution::HighToLow);
  const core::MulticastRequest req{topo, 0, {1, 2, 3, 60}};
  const auto key = key_of(req);

  EXPECT_EQ(cache.get(key), nullptr);
  EXPECT_EQ(cache.stats().misses, 1u);

  const auto schedule = build_wsort(req);
  cache.put(key, schedule);
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_GT(cache.stats().bytes, 0u);

  EXPECT_EQ(cache.get(key), schedule);  // shared tier
  EXPECT_EQ(cache.get(key), schedule);  // thread-local L1
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.l1_hits, 1u);
  EXPECT_DOUBLE_EQ(stats.hit_rate(), 2.0 / 3.0);

  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.get(key), nullptr);  // generation bump killed the L1 slot
}

TEST(ScheduleCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  ScheduleCache::Config config;
  config.shards = 1;
  config.max_bytes = 1;  // everything over budget; keeps one entry
  ScheduleCache cache(config);
  const Topology topo(6, Resolution::HighToLow);
  workload::Rng rng(5);
  for (int i = 0; i < 6; ++i) {
    const auto req = random_request(topo, 8, rng);
    cache.put(key_of(req), build_wsort(req));
  }
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);  // never evicts the newest entry
  EXPECT_EQ(stats.evictions, 5u);
}

TEST(ScheduleCache, FaultEpochInvalidatesAbsoluteEntries) {
  ScheduleCache cache;
  const Topology topo(6, Resolution::HighToLow);
  const core::MulticastRequest req{topo, 3, {1, 2, 60}};
  const auto schedule = build_wsort(req);

  const auto absolute = key_of(req, 7, /*absolute=*/true);
  cache.put(absolute, schedule, fault::fault_epoch());
  EXPECT_NE(cache.get(absolute), nullptr);

  fault::bump_fault_epoch();
  EXPECT_EQ(cache.get(absolute), nullptr);  // lazily dropped
  const auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.entries, 0u);

  // Epoch-immune absolute entries (materialized translations) survive.
  cache.put(absolute, schedule, ScheduleCache::kEpochImmune);
  fault::bump_fault_epoch();
  EXPECT_NE(cache.get(absolute), nullptr);

  // Relative entries are never epoch-sensitive.
  const auto relative = key_of(req, 7, /*absolute=*/false);
  cache.put(relative, schedule);
  fault::bump_fault_epoch();
  EXPECT_NE(cache.get(relative), nullptr);
}

// ---- the serving pipeline ------------------------------------------------

TEST(ServePipeline, CachedEqualsUncachedForAllInvariantAlgorithms) {
  for (const Resolution res :
       {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(6, res);
    for (const char* name : {"ucube", "maxport", "combine", "wsort"}) {
      auto cache = std::make_shared<ScheduleCache>();
      ServePipeline cached(name, cache);
      ServePipeline uncached(name, nullptr);
      workload::Rng rng(31);
      for (int trial = 0; trial < 25; ++trial) {
        const auto req = random_request(topo, 1 + rng() % 50, rng);
        // Twice: the first serve materializes, the second must return
        // the bit-identical cached translation.
        const auto first = cached.serve(req);
        const auto second = cached.serve(req);
        const auto direct = uncached.serve(req);
        ASSERT_TRUE(*first == *direct) << name << " trial " << trial;
        ASSERT_TRUE(*second == *direct) << name << " trial " << trial;
      }
      EXPECT_GT(cache->stats().total_hits(), 0u);
    }
  }
}

TEST(ServePipeline, PassThroughAlgorithmsNeverTouchTheCache) {
  const Topology topo(4, Resolution::HighToLow);
  auto cache = std::make_shared<ScheduleCache>();
  ServePipeline pipeline("sftree", cache);
  const core::MulticastRequest req{topo, 0, {1, 2, 3}};
  const auto a = pipeline.serve(req);
  const auto b = pipeline.serve(req);
  EXPECT_TRUE(*a == *b);
  EXPECT_EQ(cache->stats().lookups(), 0u);
}

TEST(ServePipeline, FaultAwareServesCachedRepairsUntilEpochBump) {
  const Topology topo(6, Resolution::HighToLow);
  auto faults = std::make_shared<const fault::FaultSet>([&] {
    fault::FaultSet fs(topo);
    fs.fail_link(0, 1);
    return fs;
  }());
  fault::register_fault_aware_algorithms(faults);

  auto cache = std::make_shared<ScheduleCache>();
  ServePipeline pipeline("wsort-ft", cache);
  const core::MulticastRequest req{topo, 0, {1, 2, 3, 42}};
  const auto first = pipeline.serve(req);
  const auto second = pipeline.serve(req);
  EXPECT_EQ(first, second);  // pointer-shared cache hit
  EXPECT_EQ(cache->stats().total_hits(), 1u);

  // A new fault set re-registers and bumps the epoch: the cached repair
  // is stale and must be rebuilt against the new faults.
  auto faults2 = std::make_shared<const fault::FaultSet>([&] {
    fault::FaultSet fs(topo);
    fs.fail_link(1, 2);
    return fs;
  }());
  fault::register_fault_aware_algorithms(faults2);
  ServePipeline pipeline2("wsort-ft", cache);
  const auto repaired = pipeline2.serve(req);
  EXPECT_GE(cache->stats().invalidations, 1u);
  const auto direct = fault::fault_aware_multicast(
      core::find_algorithm("wsort"), req, *faults2);
  EXPECT_TRUE(*repaired == direct.schedule);
}

TEST(ServePipeline, BatchMatchesSequentialAtAnyThreadCount) {
  const Topology topo(6, Resolution::HighToLow);
  workload::Rng rng(13);
  std::vector<core::MulticastRequest> batch;
  for (int i = 0; i < 60; ++i) {
    batch.push_back(random_request(topo, 1 + rng() % 40, rng));
  }
  ServePipeline uncached("wsort", nullptr);
  std::vector<std::shared_ptr<const core::MulticastSchedule>> reference;
  for (const auto& req : batch) reference.push_back(uncached.serve(req));

  for (const int threads : {1, 2, 4, 8}) {
    auto cache = std::make_shared<ScheduleCache>();
    ServePipeline cached("wsort", cache);
    const auto out = cached.serve_batch(batch, threads);
    ASSERT_EQ(out.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      ASSERT_TRUE(*out[i] == *reference[i])
          << "threads=" << threads << " request " << i;
    }
  }
}

TEST(ServePipeline, BatchPropagatesExceptions) {
  const Topology topo(4, Resolution::HighToLow);
  std::vector<core::MulticastRequest> batch;
  batch.push_back({topo, 0, {1, 2}});
  batch.push_back({topo, 0, {3, 3}});  // duplicate destination
  auto cache = std::make_shared<ScheduleCache>();
  ServePipeline pipeline("wsort", cache);
  EXPECT_THROW(pipeline.serve_batch(batch, 2), std::invalid_argument);
}

// ---- concurrency hammer --------------------------------------------------

TEST(ScheduleCacheConcurrency, HammerMixedHitMissInvalidateStaysBitIdentical) {
  const Topology topo(6, Resolution::HighToLow);
  ScheduleCache::Config config;
  config.shards = 4;
  config.max_bytes = std::size_t{1} << 20;  // small enough to force
                                            // evictions mid-hammer
  auto cache = std::make_shared<ScheduleCache>(config);
  ServePipeline cached("wsort", cache);
  ServePipeline uncached("wsort", nullptr);

  // A fixed pool of requests with precomputed uncached references.
  workload::Rng rng(99);
  std::vector<core::MulticastRequest> pool;
  std::vector<std::shared_ptr<const core::MulticastSchedule>> reference;
  for (int i = 0; i < 48; ++i) {
    pool.push_back(random_request(topo, 1 + rng() % 40, rng));
    reference.push_back(uncached.serve(pool.back()));
  }

  constexpr int kThreads = 8;
  constexpr int kItersPerThread = 400;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      workload::Rng local(1000 + t);
      for (int i = 0; i < kItersPerThread; ++i) {
        const std::size_t pick = local() % pool.size();
        const auto served = cached.serve(pool[pick]);
        if (!(*served == *reference[pick])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (t == 0 && i % 100 == 50) cache->clear();
        if (t == 1 && i % 100 == 50) fault::bump_fault_epoch();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const auto stats = cache->stats();
  EXPECT_EQ(stats.lookups(), stats.total_hits() + stats.misses);
  EXPECT_GT(stats.total_hits(), 0u);
  EXPECT_GT(stats.misses, 0u);
}

}  // namespace
}  // namespace hypercast
