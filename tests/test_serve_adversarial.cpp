// Adversarial serving-pipeline tests: malformed and oversized
// destination sets, zero-destination requests, deadline shedding, and
// fault-epoch bumps racing serve_batch. These run under the sanitize CI
// job (ASan/UBSan), so "survives" means clean under instrumentation.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "fault/fault_aware.hpp"
#include "obs/obs.hpp"
#include "workload/random_sets.hpp"

namespace hypercast {
namespace {

using coll::ScheduleCache;
using coll::ServePipeline;
using core::MulticastRequest;

MulticastRequest request_of(int dim, hcube::NodeId source,
                            std::vector<hcube::NodeId> dests) {
  return MulticastRequest{hcube::Topology(static_cast<hcube::Dim>(dim)),
                          source, std::move(dests)};
}

TEST(ServeAdversarial, MalformedDestinationSetsThrow) {
  const ServePipeline pipeline("wsort", nullptr);

  // Duplicate destination.
  EXPECT_THROW(pipeline.serve(request_of(4, 0, {1, 2, 2})),
               std::invalid_argument);
  // Source listed as a destination.
  EXPECT_THROW(pipeline.serve(request_of(4, 3, {3, 5})),
               std::invalid_argument);
  // Out-of-range destination (oversized node id for the cube).
  EXPECT_THROW(pipeline.serve(request_of(4, 0, {16})),
               std::invalid_argument);
  EXPECT_THROW(pipeline.serve(request_of(4, 0, {0xffffffffu})),
               std::invalid_argument);
  // Out-of-range source.
  EXPECT_THROW(pipeline.serve(request_of(4, 16, {1})),
               std::invalid_argument);
}

TEST(ServeAdversarial, ZeroDestinationRequestsServeEmptySchedules) {
  for (const char* algo : {"wsort", "ucube"}) {
    const ServePipeline uncached(algo, nullptr);
    const ServePipeline cached(algo, std::make_shared<ScheduleCache>(
                                         ScheduleCache::Config{}));
    const MulticastRequest empty = request_of(5, 7, {});
    for (const ServePipeline* pipeline : {&uncached, &cached}) {
      const auto schedule = pipeline->serve(empty);
      ASSERT_NE(schedule, nullptr);
      EXPECT_EQ(schedule->source(), 7u);
      EXPECT_TRUE(schedule->senders().empty());
      // Twice: the second serve may come from the cache.
      EXPECT_EQ(*pipeline->serve(empty), *schedule);
    }
  }
}

TEST(ServeAdversarial, OversizedBroadcastSetsServe) {
  // The largest legal destination set: every node but the source.
  const hcube::Topology topo(8);
  std::vector<hcube::NodeId> all;
  for (hcube::NodeId u = 1; u < topo.num_nodes(); ++u) all.push_back(u);
  const ServePipeline pipeline("wsort", std::make_shared<ScheduleCache>(
                                            ScheduleCache::Config{}));
  const auto schedule =
      pipeline.serve(MulticastRequest{topo, 0, all});
  ASSERT_NE(schedule, nullptr);
  // One destination too many (a duplicate, since the id space is full).
  all.push_back(1);
  EXPECT_THROW(pipeline.serve(MulticastRequest{topo, 0, all}),
               std::invalid_argument);
}

TEST(ServeAdversarial, BatchWithExpiredDeadlineShedsEverything) {
  obs::FlagsGuard flags;
  obs::set_stats_enabled(true);
  const ServePipeline pipeline("wsort", nullptr);
  workload::Rng rng(0xDEAD11ull);
  const hcube::Topology topo(6);
  std::vector<MulticastRequest> requests;
  for (int i = 0; i < 16; ++i) {
    requests.push_back(MulticastRequest{
        topo, 0, workload::random_destinations(topo, 0, 12, rng)});
  }

  // A deadline in the past sheds every slot, single- and multi-worker.
  for (const int threads : {1, 4}) {
    const auto shed = pipeline.serve_batch(
        requests, ServePipeline::BatchPolicy{threads, 1});
    ASSERT_EQ(shed.size(), requests.size());
    for (const auto& slot : shed) EXPECT_EQ(slot, nullptr);
  }
  // No deadline (0) serves every slot.
  const auto served = pipeline.serve_batch(
      requests, ServePipeline::BatchPolicy{2, 0});
  for (const auto& slot : served) EXPECT_NE(slot, nullptr);
  // A generous deadline behaves like none.
  const auto relaxed = pipeline.serve_batch(
      requests,
      ServePipeline::BatchPolicy{2, obs::now_ns() + 60'000'000'000ull});
  for (std::size_t i = 0; i < relaxed.size(); ++i) {
    ASSERT_NE(relaxed[i], nullptr);
    EXPECT_EQ(*relaxed[i], *served[i]);
  }
}

TEST(ServeAdversarial, ConcurrentFaultEpochBumpsDuringServeBatch) {
  obs::FlagsGuard flags;
  auto cache = std::make_shared<ScheduleCache>(ScheduleCache::Config{});
  const ServePipeline cached("wsort", cache);
  const ServePipeline direct("wsort", nullptr);

  workload::Rng rng(0xEB0C5ull);
  const hcube::Topology topo(7);
  std::vector<MulticastRequest> requests;
  for (int i = 0; i < 64; ++i) {
    const auto source =
        static_cast<hcube::NodeId>(rng() % topo.num_nodes());
    requests.push_back(MulticastRequest{
        topo, source,
        workload::random_destinations(topo, source, 1 + (i % 30), rng)});
  }
  std::vector<std::shared_ptr<const core::MulticastSchedule>> expected;
  expected.reserve(requests.size());
  for (const MulticastRequest& r : requests) {
    expected.push_back(direct.serve(r));
  }

  // Hammer serve_batch while another thread keeps bumping the fault
  // epoch (invalidating cached entries mid-flight). Results must stay
  // bit-identical to direct construction throughout.
  std::atomic<bool> stop{false};
  std::thread bumper([&] {
    while (!stop.load()) {
      fault::bump_fault_epoch();
      std::this_thread::yield();
    }
  });
  std::atomic<int> mismatches{0};
  std::vector<std::thread> hammers;
  for (int t = 0; t < 3; ++t) {
    hammers.emplace_back([&] {
      for (int round = 0; round < 30; ++round) {
        const auto results = cached.serve_batch(requests, 1 + (round % 3));
        for (std::size_t i = 0; i < results.size(); ++i) {
          if (results[i] == nullptr || !(*results[i] == *expected[i])) {
            ++mismatches;
          }
        }
      }
    });
  }
  for (std::thread& t : hammers) t.join();
  stop.store(true);
  bumper.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(ServeAdversarial, PipelineTracksFaultSetReRegistration) {
  // Regression: a ServePipeline used to resolve its registry entry once
  // at construction. register_fault_aware_algorithms *replaces* the
  // "-ft" entries in place, so a long-lived pipeline kept building
  // through the retired registration — schedules repaired against the
  // OLD fault set — and, worse, stamped them with the CURRENT epoch, so
  // the cache served the stale trees as fresh forever after.
  const hcube::Topology topo(6);
  const core::MulticastRequest req{topo, 0, {1, 2, 3, 42, 17}};

  auto faults_a = std::make_shared<const fault::FaultSet>([&] {
    fault::FaultSet fs(topo);
    fs.fail_link(0, 1);
    return fs;
  }());
  fault::register_fault_aware_algorithms(faults_a);

  auto cache = std::make_shared<ScheduleCache>(ScheduleCache::Config{});
  const ServePipeline cached("wsort-ft", cache);
  const ServePipeline uncached("wsort-ft", nullptr);
  const auto under_a = cached.serve(req);
  ASSERT_NE(under_a, nullptr);
  EXPECT_TRUE(*uncached.serve(req) == *under_a);

  // Swap the fault set under the SAME pipelines.
  auto faults_b = std::make_shared<const fault::FaultSet>([&] {
    fault::FaultSet fs(topo);
    fs.fail_link(1, 2);
    fs.fail_link(3, 0);
    return fs;
  }());
  fault::register_fault_aware_algorithms(faults_b);

  const auto expected =
      fault::fault_aware_multicast(core::find_algorithm("wsort"), req,
                                   *faults_b)
          .schedule;
  // Both the cached and the pass-through pipeline must now build
  // against fault set B — first serve (fills the cache) and second
  // serve (may hit it) alike.
  EXPECT_TRUE(*uncached.serve(req) == expected);
  EXPECT_TRUE(*cached.serve(req) == expected);
  EXPECT_TRUE(*cached.serve(req) == expected);

  // Leave a clean registry for other tests: an empty fault set behaves
  // like the fault-oblivious algorithms.
  fault::register_fault_aware_algorithms(
      std::make_shared<const fault::FaultSet>(topo));
}

}  // namespace
}  // namespace hypercast
