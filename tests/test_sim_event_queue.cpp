#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace hypercast::sim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.schedule(20, [&] { order.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.events_processed(), 3u);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule(42, [&order, i] { order.push_back(i); });
  }
  q.run_to_completion();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NowTracksCurrentEvent) {
  EventQueue q;
  SimTime seen = -1;
  q.schedule(100, [&] { seen = q.now(); });
  q.run_to_completion();
  EXPECT_EQ(seen, 100);
  EXPECT_EQ(q.now(), 100);
}

TEST(EventQueue, ScheduleInIsRelative) {
  EventQueue q;
  SimTime second = -1;
  q.schedule(50, [&] {
    q.schedule_in(25, [&] { second = q.now(); });
  });
  q.run_to_completion();
  EXPECT_EQ(second, 75);
}

TEST(EventQueue, EventsMayScheduleAtCurrentTime) {
  EventQueue q;
  int fired = 0;
  q.schedule(10, [&] {
    q.schedule_in(0, [&] { ++fired; });
  });
  q.run_to_completion();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, RunNextReturnsFalseWhenEmpty) {
  EventQueue q;
  EXPECT_FALSE(q.run_next());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, BudgetGuardThrows) {
  EventQueue q;
  // A self-perpetuating event chain must hit the budget.
  std::function<void()> loop = [&] { q.schedule_in(1, loop); };
  q.schedule(0, loop);
  EXPECT_THROW(q.run_to_completion(1000), std::runtime_error);
}

TEST(EventQueue, BudgetIsHonoredExactly) {
  // The guard fires after exactly max_events events — not one more.
  EventQueue q;
  std::uint64_t fired = 0;
  std::function<void()> loop = [&] {
    ++fired;
    q.schedule_in(1, loop);
  };
  q.schedule(0, loop);
  EXPECT_THROW(q.run_to_completion(100), std::runtime_error);
  EXPECT_EQ(fired, 100u);
  EXPECT_EQ(q.events_processed(), 100u);
}

TEST(EventQueue, QueueWithExactlyBudgetEventsCompletes) {
  EventQueue q;
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    q.schedule(i, [&] { ++fired; });
  }
  EXPECT_NO_THROW(q.run_to_completion(10));
  EXPECT_EQ(fired, 10);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  // Time only moves forward; a past event is a programming error in
  // every build type, not just under assertions.
  EventQueue q;
  bool threw = false;
  q.schedule(10, [&] {
    try {
      q.schedule(5, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  q.run_to_completion();
  EXPECT_TRUE(threw);
  EXPECT_EQ(q.now(), 10);
}

TEST(EventQueue, NegativeRelativeDelayThrows) {
  EventQueue q;
  bool threw = false;
  q.schedule(10, [&] {
    try {
      q.schedule_in(-1, [] {});
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  q.run_to_completion();
  EXPECT_TRUE(threw);
}

TEST(EventQueue, RecoversAfterRejectedSchedule) {
  // A rejected past-schedule must not corrupt the queue: later valid
  // events still fire in order.
  EventQueue q;
  std::vector<int> order;
  q.schedule(10, [&] {
    order.push_back(1);
    EXPECT_THROW(q.schedule(5, [] {}), std::logic_error);
    q.schedule_in(5, [&] { order.push_back(2); });
  });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, InterleavedSchedulingKeepsDeterminism) {
  // Two runs with identical schedules produce identical firing orders.
  const auto run = [] {
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] {
      order.push_back(0);
      q.schedule_in(5, [&] { order.push_back(2); });
      q.schedule_in(5, [&] { order.push_back(3); });
    });
    q.schedule(10, [&] { order.push_back(1); });
    q.run_to_completion();
    return order;
  };
  EXPECT_EQ(run(), run());
  // And events at t=10: the one scheduled first (externally) fires
  // before the two chained ones? No — insertion order is global: the
  // external t=10 event was inserted before the nested ones.
  const auto order = run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(EventQueue, ReserveDoesNotDisturbOrderOrCounts) {
  EventQueue q;
  q.reserve(1024, 64);
  std::vector<int> order;
  q.schedule(30, [&] { order.push_back(3); });
  q.schedule(10, [&] { order.push_back(1); });
  q.reserve(4096);  // reserving mid-stream is allowed too
  q.schedule(20, [&] { order.push_back(2); });
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_GT(q.memory_bytes(), 0u);
}

TEST(EventQueue, RawHandlersInterleaveWithActionsInGlobalOrder) {
  // Raw tickets and pooled actions share one (time, seq) order: the
  // insertion sequence across both kinds decides same-time ties.
  EventQueue q;
  std::vector<int> order;
  struct Ctx {
    std::vector<int>* order;
  } ctx{&order};
  const std::uint16_t kind = q.register_handler(
      [](void* c, std::uint32_t arg) {
        static_cast<Ctx*>(c)->order->push_back(static_cast<int>(arg));
      },
      &ctx);
  q.schedule(50, [&] { order.push_back(-1); });
  q.schedule_raw(50, kind, 100);
  q.schedule(50, [&] { order.push_back(-2); });
  q.schedule_raw(40, kind, 99);
  q.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{99, -1, 100, -2}));
  EXPECT_EQ(q.events_processed(), 4u);
}

TEST(EventQueue, RawSchedulingInThePastThrows) {
  EventQueue q;
  const std::uint16_t kind =
      q.register_handler([](void*, std::uint32_t) {}, nullptr);
  bool threw = false;
  q.schedule(10, [&] {
    try {
      q.schedule_raw(5, kind, 0);
    } catch (const std::logic_error&) {
      threw = true;
    }
  });
  q.run_to_completion();
  EXPECT_TRUE(threw);
}

TEST(EventQueue, RawHandlerSelfReschedulingChain) {
  EventQueue q;
  struct Ctx {
    EventQueue* q;
    std::uint16_t kind = 0;
    int fired = 0;
  } ctx{&q};
  ctx.kind = q.register_handler(
      [](void* c, std::uint32_t remaining) {
        Ctx* x = static_cast<Ctx*>(c);
        ++x->fired;
        if (remaining > 0) x->q->schedule_raw_in(7, x->kind, remaining - 1);
      },
      &ctx);
  q.schedule_raw(0, ctx.kind, 9999);
  q.run_to_completion();
  EXPECT_EQ(ctx.fired, 10000);
  EXPECT_EQ(q.now(), 9999 * 7);
}

}  // namespace
}  // namespace hypercast::sim
