#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace hypercast::sim {
namespace {

using core::PortModel;
using hcube::Topology;

TEST(Network, PathResourcesShape) {
  const Topology topo(4);
  Network net(topo, PortModel::all_port());
  const auto path = net.path_resources(0b0000, 0b1011);
  // injection + 3 arcs + consumption.
  ASSERT_EQ(path.size(), 5u);
  EXPECT_FALSE(net.is_external(path.front()));
  EXPECT_TRUE(net.is_external(path[1]));
  EXPECT_TRUE(net.is_external(path[2]));
  EXPECT_TRUE(net.is_external(path[3]));
  EXPECT_FALSE(net.is_external(path.back()));
}

TEST(Network, NeighborsShareNoDirectedArcs) {
  const Topology topo(3);
  Network net(topo, PortModel::all_port());
  const auto ab = net.path_resources(0, 1);
  const auto ba = net.path_resources(1, 0);
  // Opposite directions use different channels: the only shared
  // resource indices would be pools, which belong to different nodes.
  for (const ResourceId r : ab) {
    for (const ResourceId s : ba) {
      EXPECT_NE(r.index, s.index);
    }
  }
}

TEST(Network, TakeAndReleaseSingleChannel) {
  const Topology topo(3);
  Network net(topo, PortModel::all_port());
  const auto path = net.path_resources(0, 1);
  const ResourceId arc = path[1];
  EXPECT_TRUE(net.available(arc));
  net.take(arc);
  EXPECT_FALSE(net.available(arc));
  EXPECT_FALSE(net.release(arc).has_value());
  EXPECT_TRUE(net.available(arc));
}

TEST(Network, FifoGrantOrder) {
  const Topology topo(3);
  Network net(topo, PortModel::all_port());
  const ResourceId arc = net.path_resources(0, 1)[1];
  net.take(arc);
  net.enqueue(arc, MessageId{7});
  net.enqueue(arc, MessageId{3});
  const auto first = net.release(arc);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, MessageId{7});
  EXPECT_FALSE(net.available(arc));  // re-granted immediately
  const auto second = net.release(arc);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, MessageId{3});
  EXPECT_FALSE(net.release(arc).has_value());
  EXPECT_TRUE(net.quiescent());
}

TEST(Network, OnePortPoolsHaveCapacityOne) {
  const Topology topo(3);
  Network net(topo, PortModel::one_port());
  const ResourceId inj = net.path_resources(0, 1).front();
  // The same injection pool appears in any path leaving node 0.
  EXPECT_EQ(net.path_resources(0, 2).front().index, inj.index);
  net.take(inj);
  EXPECT_FALSE(net.available(inj));
}

TEST(Network, AllPortPoolsHaveCapacityN) {
  const Topology topo(3);
  Network net(topo, PortModel::all_port());
  const ResourceId inj = net.path_resources(0, 1).front();
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(net.available(inj));
    net.take(inj);
  }
  EXPECT_FALSE(net.available(inj));
}

TEST(Network, KPortPoolsHaveCapacityK) {
  const Topology topo(4);
  Network net(topo, PortModel::k_port(2));
  const ResourceId inj = net.path_resources(5, 1).front();
  net.take(inj);
  EXPECT_TRUE(net.available(inj));
  net.take(inj);
  EXPECT_FALSE(net.available(inj));
}

TEST(Network, QuiescentDetectsHeldResources) {
  const Topology topo(3);
  Network net(topo, PortModel::all_port());
  EXPECT_TRUE(net.quiescent());
  const ResourceId arc = net.path_resources(0, 4)[1];
  net.take(arc);
  EXPECT_FALSE(net.quiescent());
  net.release(arc);
  EXPECT_TRUE(net.quiescent());
}

}  // namespace
}  // namespace hypercast::sim
