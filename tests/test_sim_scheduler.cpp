// Scheduler equivalence: the calendar-queue EventQueue must produce
// bit-identical pop order to a reference binary heap with the same
// (time, insertion-seq) contract, over randomized self-expanding
// workloads — including dense same-timestamp bursts and far-future
// inserts that stress the overflow ladder.

#include <gtest/gtest.h>

#include <cstdint>
#include <queue>
#include <vector>

#include "sim/event_queue.hpp"

namespace hypercast::sim {
namespace {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Flavors steer the offset mix toward a pathology.
enum class Flavor { Mixed, DenseBursts, FarFuture };

/// The workload is defined purely by (seed, flavor): event `id`, when
/// it fires, spawns children at these offsets. Both queues replay the
/// identical branching process, so any divergence is a scheduler bug.
std::vector<SimTime> child_offsets(std::uint64_t seed, std::uint32_t id,
                                   Flavor flavor) {
  const std::uint64_t h = splitmix64(seed ^ (0x51ed2701ULL + id));
  std::vector<SimTime> offsets;
  const int k = static_cast<int>(h % 3);  // 0..2 children
  for (int j = 0; j < k; ++j) {
    const std::uint64_t hj = splitmix64(h + static_cast<std::uint64_t>(j));
    SimTime d;
    switch (flavor) {
      case Flavor::DenseBursts:
        // Mostly zero-delay: giant same-timestamp cohorts that must
        // still fire in exact insertion order.
        d = (hj % 8 == 0) ? static_cast<SimTime>(hj % 5) : 0;
        break;
      case Flavor::FarFuture:
        // Mostly beyond any calendar window horizon.
        d = (hj % 4 == 0) ? static_cast<SimTime>(hj % 1000)
                          : static_cast<SimTime>(1'000'000'000) +
                                static_cast<SimTime>(hj % 1'000'000'000);
        break;
      case Flavor::Mixed:
      default:
        switch (hj % 5) {
          case 0: d = 0; break;
          case 1: d = static_cast<SimTime>(hj % 7); break;
          case 2: d = static_cast<SimTime>(hj % 1000); break;
          case 3: d = static_cast<SimTime>(hj % 100'000); break;
          default: d = static_cast<SimTime>(hj % 2'000'000'000); break;
        }
        break;
    }
    offsets.push_back(d);
  }
  return offsets;
}

std::vector<SimTime> seed_times(std::uint64_t seed, Flavor flavor,
                                std::size_t count) {
  std::vector<SimTime> times;
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t h = splitmix64(seed ^ (0xabcdULL + i));
    times.push_back(flavor == Flavor::DenseBursts
                        ? static_cast<SimTime>(h % 3)
                        : static_cast<SimTime>(h % 10'000));
  }
  return times;
}

struct Fired {
  SimTime at;
  std::uint32_t id;
  bool operator==(const Fired&) const = default;
};

/// Reference model: the exact pre-calendar scheduler — a binary heap of
/// (at, seq) with FIFO tie-break — driven through the same branching
/// process without callbacks.
std::vector<Fired> run_reference(std::uint64_t seed, Flavor flavor,
                                 std::size_t max_events) {
  struct T {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t id;
  };
  struct Later {
    bool operator()(const T& a, const T& b) const {
      return a.at != b.at ? a.at > b.at : a.seq > b.seq;
    }
  };
  std::priority_queue<T, std::vector<T>, Later> heap;
  std::uint64_t seq = 0;
  std::uint32_t next_id = 0;
  for (const SimTime t : seed_times(seed, flavor, 16)) {
    heap.push(T{t, seq++, next_id++});
  }
  std::vector<Fired> fired;
  while (!heap.empty() && fired.size() < max_events) {
    const T top = heap.top();
    heap.pop();
    fired.push_back(Fired{top.at, top.id});
    if (next_id < max_events) {
      for (const SimTime d : child_offsets(seed, top.id, flavor)) {
        if (next_id >= max_events) break;
        heap.push(T{top.at + d, seq++, next_id++});
      }
    }
  }
  return fired;
}

/// Real run: the calendar queue, spawning through both the raw-handler
/// path and the pooled Action path (every third event) so the shared
/// (time, seq) ordering across kinds is exercised too.
std::vector<Fired> run_calendar(std::uint64_t seed, Flavor flavor,
                                std::size_t max_events,
                                std::size_t reserve = 0) {
  EventQueue q;
  if (reserve != 0) q.reserve(reserve);
  struct Ctx {
    EventQueue* q;
    std::uint64_t seed;
    Flavor flavor;
    std::size_t max_events;
    std::uint16_t kind = 0;
    std::uint32_t next_id = 0;
    std::vector<Fired> fired;

    void spawn(SimTime at, std::uint32_t id) {
      if (id % 3 == 0) {
        q->schedule(at, [this, id] { fire(id); });
      } else {
        q->schedule_raw(at, kind, id);
      }
    }
    void fire(std::uint32_t id) {
      fired.push_back(Fired{q->now(), id});
      if (next_id < max_events) {
        for (const SimTime d : child_offsets(seed, id, flavor)) {
          if (next_id >= max_events) break;
          spawn(q->now() + d, next_id++);
        }
      }
    }
  };
  Ctx ctx;
  ctx.q = &q;
  ctx.seed = seed;
  ctx.flavor = flavor;
  ctx.max_events = max_events;
  ctx.kind = q.register_handler(
      [](void* c, std::uint32_t id) { static_cast<Ctx*>(c)->fire(id); },
      &ctx);
  for (const SimTime t : seed_times(seed, flavor, 16)) {
    ctx.spawn(t, ctx.next_id++);
  }
  while (ctx.fired.size() < max_events && q.run_next()) {
  }
  return ctx.fired;
}

class SchedulerEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerEquivalence, MixedWorkloadPopOrderBitIdentical) {
  const auto ref = run_reference(GetParam(), Flavor::Mixed, 20'000);
  const auto cal = run_calendar(GetParam(), Flavor::Mixed, 20'000);
  ASSERT_EQ(ref.size(), cal.size());
  EXPECT_EQ(ref, cal);
}

TEST_P(SchedulerEquivalence, DenseSameTimestampBurstsKeepFifo) {
  const auto ref = run_reference(GetParam(), Flavor::DenseBursts, 20'000);
  const auto cal = run_calendar(GetParam(), Flavor::DenseBursts, 20'000);
  EXPECT_EQ(ref, cal);
}

TEST_P(SchedulerEquivalence, FarFutureInsertsSpillAndReturnInOrder) {
  const auto ref = run_reference(GetParam(), Flavor::FarFuture, 20'000);
  const auto cal = run_calendar(GetParam(), Flavor::FarFuture, 20'000);
  EXPECT_EQ(ref, cal);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerEquivalence,
                         ::testing::Values(1u, 2u, 3u, 17u, 0xdeadbeefu));

TEST(SchedulerEquivalence, ReserveDoesNotChangeOrder) {
  // reserve() must be order-neutral: the reserved run matches both the
  // unreserved run and the reference heap.
  const auto reserved = run_calendar(99, Flavor::Mixed, 10'000, 100'000);
  EXPECT_EQ(reserved, run_calendar(99, Flavor::Mixed, 10'000));
  EXPECT_EQ(reserved, run_reference(99, Flavor::Mixed, 10'000));
}

}  // namespace
}  // namespace hypercast::sim
