// Sharded conservative-parallel simulation: footprint partitioning and
// the thread-count-invariance / exactness guarantees of
// simulate_collectives_sharded.

#include "sim/shard.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/chain_algorithms.hpp"
#include "core/wsort.hpp"
#include "workload/patterns.hpp"

namespace hypercast::sim {
namespace {

using core::MulticastSchedule;

MulticastSchedule subcube_broadcast(const hcube::Topology& topo, hcube::NodeId base,
                                    int sub_dim) {
  // W-sort broadcast confined to the sub_dim-subcube anchored at base
  // (varying the low sub_dim coordinates).
  std::vector<hcube::NodeId> dests;
  for (hcube::NodeId off = 1; off < (hcube::NodeId{1} << sub_dim); ++off) {
    dests.push_back(base ^ off);
  }
  return core::wsort(core::MulticastRequest{topo, base, dests});
}

bool same_result(const MultiSimResult& a, const MultiSimResult& b) {
  if (a.per_job.size() != b.per_job.size()) return false;
  if (a.shards != b.shards) return false;
  if (a.stats.messages != b.stats.messages ||
      a.stats.blocked_acquisitions != b.stats.blocked_acquisitions ||
      a.stats.total_blocked_ns != b.stats.total_blocked_ns ||
      a.stats.events != b.stats.events) {
    return false;
  }
  for (std::size_t j = 0; j < a.per_job.size(); ++j) {
    if (a.per_job[j].delivery != b.per_job[j].delivery) return false;
    if (a.per_job[j].stats.messages != b.per_job[j].stats.messages ||
        a.per_job[j].stats.blocked_acquisitions !=
            b.per_job[j].stats.blocked_acquisitions ||
        a.per_job[j].stats.total_blocked_ns !=
            b.per_job[j].stats.total_blocked_ns ||
        a.per_job[j].stats.events != b.per_job[j].stats.events) {
      return false;
    }
  }
  return true;
}

TEST(ShardPlanTest, DisjointSubcubeJobsGetTheirOwnShards) {
  const hcube::Topology topo(6);
  std::vector<MulticastSchedule> schedules;
  for (int t = 0; t < 4; ++t) {
    schedules.push_back(
        subcube_broadcast(topo, static_cast<hcube::NodeId>(t) << 4, 4));
  }
  std::vector<CollectiveJob> jobs;
  for (const auto& s : schedules) jobs.push_back({&s, 0});
  const ShardPlan plan = partition_collective_jobs(jobs);
  ASSERT_EQ(plan.shards.size(), 4u);
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(plan.shards[s], (std::vector<std::size_t>{s}));
  }
}

TEST(ShardPlanTest, SharedNodeMergesJobsEvenWithDisjointArcs) {
  // Two single-send jobs with arc-disjoint routes but a common
  // participant (node 0 sends in one job and receives in the other):
  // its CPU serializes them, so they must share a shard.
  const hcube::Topology topo(4);
  MulticastSchedule s1(topo, 0);
  s1.add_send(0, 0b0001, {});
  MulticastSchedule s2(topo, 0b0010);
  s2.add_send(0b0010, 0, {});
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, 0}};
  const ShardPlan plan = partition_collective_jobs(jobs);
  ASSERT_EQ(plan.shards.size(), 1u);
  EXPECT_EQ(plan.shards[0], (std::vector<std::size_t>{0, 1}));
}

TEST(ShardPlanTest, ConflictsChainTransitively) {
  // A conflicts with B, B with C: one shard of three, even though A and
  // C never touch.
  const hcube::Topology topo(4);
  MulticastSchedule a(topo, 0b0000);
  a.add_send(0b0000, 0b0001, {});
  MulticastSchedule b(topo, 0b0001);
  b.add_send(0b0001, 0b0011, {});
  MulticastSchedule c(topo, 0b0011);
  c.add_send(0b0011, 0b0111, {});
  MulticastSchedule d(topo, 0b1000);  // fully independent
  d.add_send(0b1000, 0b1100, {});
  const CollectiveJob jobs[] = {{&a, 0}, {&b, 0}, {&c, 0}, {&d, 0}};
  const ShardPlan plan = partition_collective_jobs(jobs);
  ASSERT_EQ(plan.shards.size(), 2u);
  EXPECT_EQ(plan.shards[0], (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(plan.shards[1], (std::vector<std::size_t>{3}));
}

TEST(ShardedSim, MatchesUnshardedForIndependentJobs) {
  // Independent shards simulate exactly: per-job deliveries and
  // blocking match the joint single-queue run (which interleaves
  // events across jobs but shares no state between them).
  const hcube::Topology topo(6);
  std::vector<MulticastSchedule> schedules;
  for (int t = 0; t < 4; ++t) {
    schedules.push_back(
        subcube_broadcast(topo, static_cast<hcube::NodeId>(t) << 4, 4));
  }
  std::vector<CollectiveJob> jobs;
  for (const auto& s : schedules) jobs.push_back({&s, 0});
  const SimConfig config;
  const auto joint = simulate_collectives(jobs, config);
  const auto sharded = simulate_collectives_sharded(jobs, config, 2);
  ASSERT_EQ(sharded.shards, 4u);
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    EXPECT_EQ(sharded.per_job[j].delivery, joint.per_job[j].delivery);
    EXPECT_EQ(sharded.per_job[j].stats.blocked_acquisitions,
              joint.per_job[j].stats.blocked_acquisitions);
  }
  EXPECT_EQ(sharded.stats.messages, joint.stats.messages);
  EXPECT_EQ(sharded.stats.events, joint.stats.events);
  EXPECT_EQ(sharded.stats.blocked_acquisitions,
            joint.stats.blocked_acquisitions);
}

TEST(ShardedSim, BitIdenticalAtAnyThreadCount) {
  const hcube::Topology topo(7);
  std::vector<MulticastSchedule> schedules;
  // 8 tenants in disjoint 4-subcubes, plus two deliberately conflicting
  // broadcasts sharing a subcube — a mixed plan of 9 shards.
  for (int t = 0; t < 8; ++t) {
    schedules.push_back(
        subcube_broadcast(topo, static_cast<hcube::NodeId>(t) << 4, 4));
  }
  schedules.push_back(subcube_broadcast(topo, 0b0000000, 3));
  std::vector<CollectiveJob> jobs;
  for (const auto& s : schedules) jobs.push_back({&s, 0});
  SimConfig config;
  config.record_trace = true;
  const auto t1 = simulate_collectives_sharded(jobs, config, 1);
  const auto t4 = simulate_collectives_sharded(jobs, config, 4);
  const auto t8 = simulate_collectives_sharded(jobs, config, 8);
  EXPECT_TRUE(same_result(t1, t4));
  EXPECT_TRUE(same_result(t1, t8));
  // Traces merge in plan order: byte-identical message streams too.
  ASSERT_EQ(t1.trace.messages.size(), t8.trace.messages.size());
  for (std::size_t i = 0; i < t1.trace.messages.size(); ++i) {
    EXPECT_EQ(t1.trace.messages[i].from, t8.trace.messages[i].from);
    EXPECT_EQ(t1.trace.messages[i].to, t8.trace.messages[i].to);
    EXPECT_EQ(t1.trace.messages[i].done, t8.trace.messages[i].done);
  }
}

TEST(ShardedSim, SingleShardFallsBackToJointRun) {
  const hcube::Topology topo(5);
  const auto s1 = subcube_broadcast(topo, 0, 5);  // full-cube broadcast
  const auto s2 = subcube_broadcast(topo, 1, 3);
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, 0}};
  const auto plan = partition_collective_jobs(jobs);
  ASSERT_EQ(plan.shards.size(), 1u);
  const auto joint = simulate_collectives(jobs, SimConfig{});
  const auto sharded = simulate_collectives_sharded(jobs, SimConfig{}, 8);
  EXPECT_EQ(sharded.shards, 1u);
  for (std::size_t j = 0; j < 2; ++j) {
    EXPECT_EQ(sharded.per_job[j].delivery, joint.per_job[j].delivery);
  }
}

TEST(ShardedSim, EmptyJobListIsANoop) {
  const auto result = simulate_collectives_sharded({}, SimConfig{}, 4);
  EXPECT_TRUE(result.per_job.empty());
  EXPECT_EQ(result.makespan(), 0);
}

TEST(ShardedSim, StaggeredStartsSurviveSharding) {
  const hcube::Topology topo(6);
  const auto s1 = subcube_broadcast(topo, 0b000000, 4);
  const auto s2 = subcube_broadcast(topo, 0b110000, 4);
  const SimTime offset = 500'000;
  const CollectiveJob jobs[] = {{&s1, 0}, {&s2, offset}};
  const auto joint = simulate_collectives(jobs, SimConfig{});
  const auto sharded = simulate_collectives_sharded(jobs, SimConfig{}, 2);
  ASSERT_EQ(sharded.shards, 2u);
  EXPECT_EQ(sharded.per_job[1].delivery, joint.per_job[1].delivery);
}

}  // namespace
}  // namespace hypercast::sim
