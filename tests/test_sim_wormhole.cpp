#include "sim/wormhole_sim.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "test_util.hpp"

namespace hypercast::sim {
namespace {

using namespace testutil;
using core::MulticastSchedule;
using core::Send;

SimConfig basic_config() {
  SimConfig c;
  c.cost = CostModel::ncube2();
  c.port = PortModel::all_port();
  c.message_bytes = 4096;
  return c;
}

TEST(WormholeSim, UnicastMatchesClosedForm) {
  const Topology topo(6);
  const SimConfig config = basic_config();
  for (const NodeId to : {1u, 3u, 7u, 21u, 63u}) {
    const SimTime t = simulate_unicast(topo, config, 0, to);
    const int hops = topo.distance(0, to);
    EXPECT_EQ(t, config.cost.unicast_latency(hops, config.message_bytes))
        << "to " << to;
  }
}

TEST(WormholeSim, LatencyIsAlmostDistanceInsensitive) {
  // The wormhole signature (Section 1): latency grows only by per_hop
  // per extra hop, tiny against the body streaming time.
  const Topology topo(10);
  const SimConfig config = basic_config();
  const SimTime near = simulate_unicast(topo, config, 0, 1);
  const SimTime far = simulate_unicast(topo, config, 0, 1023);
  EXPECT_EQ(far - near, 9 * config.cost.per_hop);
  EXPECT_LT(static_cast<double>(far - near), 0.01 * static_cast<double>(near));
}

TEST(WormholeSim, MessageSizeScalesBodyTime) {
  const Topology topo(4);
  SimConfig config = basic_config();
  config.message_bytes = 64;
  const SimTime small = simulate_unicast(topo, config, 0, 15);
  config.message_bytes = 4096;
  const SimTime large = simulate_unicast(topo, config, 0, 15);
  EXPECT_EQ(large - small, config.cost.body_time(4096 - 64));
}

TEST(WormholeSim, SameChannelSendsSerialize) {
  // Two sends from node 0 sharing channel 3: the second worm blocks on
  // the external channel until the first releases it at tail time.
  const Topology topo(4);
  const SimConfig config = basic_config();
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 9, {});
  const auto result = simulate_multicast(s, config);
  EXPECT_EQ(result.stats.blocked_acquisitions, 1u);
  const SimTime first = result.delay(8);
  EXPECT_EQ(first, config.cost.unicast_latency(1, 4096));
  // The second send's startup overlaps the first transmission, but the
  // worm cannot enter channel (0000, 3) until the first tail passes.
  const SimTime tail_first = first - config.cost.recv_overhead;
  const SimTime expected_second = tail_first + 2 * config.cost.per_hop +
                                  config.cost.body_time(4096) +
                                  config.cost.recv_overhead;
  EXPECT_EQ(result.delay(9), expected_second);
}

TEST(WormholeSim, DistinctChannelSendsOverlap) {
  // All-port: n sends on n distinct channels overlap their DMA; only
  // the CPU startups serialize.
  const Topology topo(4);
  const SimConfig config = basic_config();
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  s.add_send(0, 8, {});
  const auto result = simulate_multicast(s, config);
  EXPECT_EQ(result.stats.blocked_acquisitions, 0u);
  for (int i = 0; i < 4; ++i) {
    const NodeId to = NodeId{1} << i;
    EXPECT_EQ(result.delay(to),
              (i + 1) * config.cost.send_startup + config.cost.per_hop +
                  config.cost.body_time(4096) + config.cost.recv_overhead);
  }
}

TEST(WormholeSim, OnePortSerializesAtTheInjectionPool) {
  // One-port: the second DMA cannot start until the first completes,
  // even on a different channel.
  const Topology topo(4);
  SimConfig config = basic_config();
  config.port = PortModel::one_port();
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  const auto result = simulate_multicast(s, config);
  EXPECT_EQ(result.stats.blocked_acquisitions, 1u);
  EXPECT_EQ(result.delay(1), config.cost.unicast_latency(1, 4096));
  // Second worm waits for the first's tail (release of the pool).
  const SimTime tail_first = result.delay(1) - config.cost.recv_overhead;
  EXPECT_EQ(result.delay(2), tail_first + config.cost.per_hop +
                                 config.cost.body_time(4096) +
                                 config.cost.recv_overhead);
}

TEST(WormholeSim, OnePortReceiverSerializesArrivals) {
  // Two messages from different sources converge on one destination:
  // a one-port receiver consumes them one at a time.
  const Topology topo(4);
  SimConfig config = basic_config();
  config.port = PortModel::one_port();
  MulticastSchedule s(topo, 0b0001);
  // 0001 sends to 0000 (channel 0) and to 0011 which relays to 0010,
  // then 0010 -> 0000? Keep it simpler: source sends two messages to
  // the same destination's neighbours... build a fork instead:
  //   0001 -> 0101 (payload {0100}); 0101 -> 0100
  //   0001 -> 0000 then 0000 -> 0100? 0000->0100 and 0101->0100 meet at
  //   consumption of 0100.
  s.add_send(0b0001, 0b0101, {0b0100});
  s.add_send(0b0001, 0b0000, {0b1100});
  s.add_send(0b0101, 0b0100, {});
  s.add_send(0b0000, 0b1100, {});
  const auto result = simulate_multicast(s, config);
  // Structural sanity: everyone got it exactly once, simulation drained.
  EXPECT_EQ(result.delivery.size(), 4u);
}

TEST(WormholeSim, AllPortReceiverAcceptsConcurrentArrivals) {
  // Node 0b11 receives from 0b01 (channel 1) and... a node receives
  // only once per multicast, so test concurrency via two disjoint
  // deliveries sharing a last-hop router but different consumption
  // slots — covered by DistinctChannelSendsOverlap. Here instead make
  // sure k-port pools bound concurrent *sends*.
  const Topology topo(4);
  SimConfig config = basic_config();
  config.port = PortModel::k_port(2);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  const auto result = simulate_multicast(s, config);
  // Third worm waits for an injection slot.
  EXPECT_EQ(result.stats.blocked_acquisitions, 1u);
  const SimTime third_expected =
      result.delay(1) - config.cost.recv_overhead  // first tail frees a slot
      + config.cost.per_hop + config.cost.body_time(4096) +
      config.cost.recv_overhead;
  EXPECT_EQ(result.delay(4), third_expected);
}

TEST(WormholeSim, ContentionFreeSchedulesNeverBlock) {
  // Theorem 6 made operational: W-sort and Maxport schedules replay
  // through the simulator with zero blocked acquisitions on all-port.
  workload::Rng rng(1009);
  const SimConfig config = basic_config();
  for (const Resolution res : {Resolution::HighToLow, Resolution::LowToHigh}) {
    for (const hcube::Dim n : {4, 6, 8}) {
      const Topology topo(n, res);
      for (int trial = 0; trial < 6; ++trial) {
        const std::size_t m =
            1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 60);
        const auto req = random_request(topo, m, rng);
        for (const char* name : {"maxport", "wsort"}) {
          const auto schedule = core::find_algorithm(name).build(req);
          const auto result = simulate_multicast(schedule, config);
          EXPECT_EQ(result.stats.blocked_acquisitions, 0u)
              << name << " n=" << n << " m=" << m;
          EXPECT_EQ(result.delivery.size(), m);
        }
      }
    }
  }
}

TEST(WormholeSim, UCubeOnePortDrainsCompletely) {
  // One-port U-cube replay: injection-pool waits are expected (they ARE
  // the port model), but every message must still deliver exactly once
  // and the simulation must drain without deadlock.
  workload::Rng rng(1013);
  SimConfig config = basic_config();
  config.port = PortModel::one_port();
  const Topology topo(6);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 1 + rng() % 60;
    const auto req = random_request(topo, m, rng);
    const auto result = simulate_multicast(core::ucube(req), config);
    EXPECT_EQ(result.delivery.size(), m);
    // One-port injection waits are expected (that IS the port model);
    // external channel conflicts are not. Distinguish via trace.
  }
}

TEST(WormholeSim, DeterministicReplay) {
  const Topology topo(8);
  workload::Rng rng(1019);
  const auto req = random_request(topo, 100, rng);
  const auto schedule = core::combine(req);
  const SimConfig config = basic_config();
  const auto a = simulate_multicast(schedule, config);
  const auto b = simulate_multicast(schedule, config);
  ASSERT_EQ(a.delivery.size(), b.delivery.size());
  for (const auto& [node, t] : a.delivery) {
    EXPECT_EQ(b.delivery.at(node), t);
  }
  EXPECT_EQ(a.stats.events, b.stats.events);
}

TEST(WormholeSim, TraceRecordsTimeline) {
  const Topology topo(4);
  SimConfig config = basic_config();
  config.record_trace = true;
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {12});
  s.add_send(8, 12, {});
  const auto result = simulate_multicast(s, config);
  ASSERT_EQ(result.trace.messages.size(), 2u);
  const auto& first = result.trace.messages[0];
  EXPECT_EQ(first.from, 0u);
  EXPECT_EQ(first.to, 8u);
  EXPECT_EQ(first.issue, 0);
  EXPECT_EQ(first.header_start, config.cost.send_startup);
  EXPECT_EQ(first.path_acquired,
            config.cost.send_startup + config.cost.per_hop);
  EXPECT_EQ(first.tail, first.path_acquired + config.cost.body_time(4096));
  EXPECT_EQ(first.done, first.tail + config.cost.recv_overhead);
  EXPECT_EQ(first.blocked_ns, 0);
  const auto& second = result.trace.messages[1];
  EXPECT_EQ(second.issue, first.done);
  const std::string rendered = result.trace.format(topo);
  EXPECT_NE(rendered.find("0000 -> 1000"), std::string::npos);
  EXPECT_NE(rendered.find("1000 -> 1100"), std::string::npos);
}

TEST(WormholeSim, AvgAndMaxDelayHelpers) {
  const Topology topo(4);
  const SimConfig config = basic_config();
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 9, {});
  const auto result = simulate_multicast(s, config);
  const std::vector<NodeId> targets{8, 9};
  EXPECT_EQ(result.max_delay(targets),
            std::max(result.delay(8), result.delay(9)));
  EXPECT_DOUBLE_EQ(result.avg_delay(targets),
                   (static_cast<double>(result.delay(8)) +
                    static_cast<double>(result.delay(9))) /
                       2.0);
  // Defaults aggregate over every recipient.
  EXPECT_EQ(result.max_delay(), result.max_delay(targets));
}

TEST(WormholeSim, EmptyScheduleIsANoop) {
  const Topology topo(4);
  MulticastSchedule s(topo, 5);
  const auto result = simulate_multicast(s, basic_config());
  EXPECT_TRUE(result.delivery.empty());
  EXPECT_EQ(result.stats.messages, 0u);
}

TEST(WormholeSim, FastNetworkCostModel) {
  const Topology topo(4);
  SimConfig config = basic_config();
  config.cost = CostModel::fast_network();
  const SimTime t = simulate_unicast(topo, config, 0, 15);
  EXPECT_EQ(t, config.cost.unicast_latency(4, 4096));
  EXPECT_LT(t, CostModel::ncube2().unicast_latency(4, 4096));
}

}  // namespace
}  // namespace hypercast::sim
