#include "core/stepwise.hpp"

#include <gtest/gtest.h>

#include "core/chain_algorithms.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(PortModel, Concurrency) {
  EXPECT_EQ(PortModel::one_port().concurrency(8), 1);
  EXPECT_EQ(PortModel::all_port().concurrency(8), 8);
  EXPECT_EQ(PortModel::k_port(3).concurrency(8), 3);
  EXPECT_STREQ(PortModel::one_port().name(), "one-port");
  EXPECT_STREQ(PortModel::all_port().name(), "all-port");
  EXPECT_STREQ(PortModel::k_port(2).name(), "k-port");
}

TEST(Stepwise, OnePortSerializesAllSends) {
  // Source sends to 4 nodes on 4 distinct channels: one-port still
  // serializes them at steps 1, 2, 3, 4.
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  s.add_send(0, 8, {});
  const auto steps = assign_steps(s, PortModel::one_port());
  EXPECT_EQ(steps.arrival_step.at(1), 1);
  EXPECT_EQ(steps.arrival_step.at(2), 2);
  EXPECT_EQ(steps.arrival_step.at(4), 3);
  EXPECT_EQ(steps.arrival_step.at(8), 4);
  EXPECT_EQ(steps.total_steps, 4);
}

TEST(Stepwise, AllPortParallelizesDistinctChannels) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  s.add_send(0, 8, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  for (const NodeId v : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(steps.arrival_step.at(v), 1);
  }
  EXPECT_EQ(steps.total_steps, 1);
}

TEST(Stepwise, AllPortSerializesSameChannel) {
  // 9, 8, 12: delta from 0 is 3 for all (high-to-low): they share the
  // first arc and must go in consecutive steps, in issue order.
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 9, {});
  s.add_send(0, 8, {});
  s.add_send(0, 12, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.arrival_step.at(9), 1);
  EXPECT_EQ(steps.arrival_step.at(8), 2);
  EXPECT_EQ(steps.arrival_step.at(12), 3);
}

TEST(Stepwise, ChannelSerializationDependsOnResolutionOrder) {
  // Under low-to-high resolution, 9 (1001) and 8 (1000) leave node 0 on
  // different first channels (0 and 3), so they parallelize.
  const Topology topo(4, Resolution::LowToHigh);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 9, {});
  s.add_send(0, 8, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.arrival_step.at(9), 1);
  EXPECT_EQ(steps.arrival_step.at(8), 1);
}

TEST(Stepwise, KPortLimitsConcurrency) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 1, {});
  s.add_send(0, 2, {});
  s.add_send(0, 4, {});
  s.add_send(0, 8, {});
  const auto steps = assign_steps(s, PortModel::k_port(2));
  // Four distinct channels but only two ports: steps 1,1,2,2.
  EXPECT_EQ(steps.arrival_step.at(1), 1);
  EXPECT_EQ(steps.arrival_step.at(2), 1);
  EXPECT_EQ(steps.arrival_step.at(4), 2);
  EXPECT_EQ(steps.arrival_step.at(8), 2);
}

TEST(Stepwise, KPortAlsoRespectsChannelConflicts) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {});
  s.add_send(0, 9, {});   // same channel as 8
  s.add_send(0, 1, {});
  const auto steps = assign_steps(s, PortModel::k_port(2));
  EXPECT_EQ(steps.arrival_step.at(8), 1);
  EXPECT_EQ(steps.arrival_step.at(9), 2);  // channel 3 busy at step 1
  EXPECT_EQ(steps.arrival_step.at(1), 1);
}

TEST(Stepwise, ForwardingStartsOneStepAfterArrival) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {12});
  s.add_send(8, 12, {});
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.arrival_step.at(8), 1);
  EXPECT_EQ(steps.arrival_step.at(12), 2);
}

TEST(Stepwise, TargetsRestrictTotalSteps) {
  const Topology topo(4);
  MulticastSchedule s(topo, 0);
  s.add_send(0, 8, {12});
  s.add_send(8, 12, {});
  const std::vector<NodeId> only_first{8};
  const auto steps = assign_steps(s, PortModel::all_port(), only_first);
  EXPECT_EQ(steps.total_steps, 1);  // 12 is a relay for this query
  const auto all = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(all.total_steps, 2);
}

TEST(Stepwise, UnicastsCarryTheirDepartureSteps) {
  const Topology topo(4);
  workload::Rng rng(801);
  const auto req = random_request(topo, 10, rng);
  const auto s = combine(req);
  const auto steps = assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.unicasts.size(), s.num_unicasts());
  for (const TimedUnicast& u : steps.unicasts) {
    EXPECT_EQ(u.step, steps.arrival_step.at(u.to));
    EXPECT_GE(u.step, steps.arrival_step.at(u.from) + 1);
  }
}

TEST(Stepwise, EmptyScheduleHasZeroSteps) {
  MulticastSchedule s(Topology(4), 3);
  const auto steps = assign_steps(s, PortModel::all_port());
  EXPECT_EQ(steps.total_steps, 0);
  EXPECT_TRUE(steps.unicasts.empty());
}

}  // namespace
}  // namespace hypercast::core
