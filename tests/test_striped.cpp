// The striping layer (coll/striped.hpp): payload split/reassembly with
// XOR parity, plan correctness over the IST trees, equivalence of the
// striped delivery set with single-tree delivery under the DES, the
// bandwidth win it exists for, cache integration, and the fault-epoch
// swap semantics (drop onto parity vs detour repair).

#include "coll/striped.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "coll/serve_pipeline.hpp"
#include "core/ist.hpp"
#include "fault/fault_aware.hpp"
#include "workload/concurrent.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;
using coll::ScheduleCache;
using coll::StripedPlan;
using coll::StripedPlanner;
using coll::StripeOptions;
using core::MulticastRequest;
using core::MulticastSchedule;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

std::vector<NodeId> broadcast_dests(const Topology& topo, NodeId source) {
  std::vector<NodeId> dests;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (u != source) dests.push_back(u);
  }
  return dests;
}

std::vector<std::uint8_t> pattern_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return payload;
}

TEST(StripeBytes, SplitReassembleRoundtrip) {
  for (const std::size_t size : {0ul, 1ul, 7ul, 10ul, 64ul, 1000ul}) {
    const auto payload = pattern_payload(size);
    for (const std::size_t stripes : {1ul, 3ul, 5ul, 8ul}) {
      const auto split = coll::split_stripes(payload, stripes, false);
      ASSERT_EQ(split.size(), stripes);
      const auto back =
          coll::reassemble_stripes(split, stripes, payload.size());
      EXPECT_EQ(back, payload) << "size=" << size << " stripes=" << stripes;
    }
  }
}

TEST(StripeBytes, ParityReconstructsAnySingleMissingStripe) {
  const auto payload = pattern_payload(1000);
  for (const std::size_t stripes : {2ul, 3ul, 7ul}) {
    const auto split = coll::split_stripes(payload, stripes, true);
    ASSERT_EQ(split.size(), stripes + 1);
    for (std::size_t missing = 0; missing < stripes; ++missing) {
      const auto back = coll::reassemble_stripes(
          split, stripes, payload.size(), static_cast<int>(missing));
      EXPECT_EQ(back, payload) << "stripes=" << stripes
                               << " missing=" << missing;
    }
  }
}

TEST(StripeBytes, RejectsBadArguments) {
  const auto payload = pattern_payload(16);
  EXPECT_THROW(coll::split_stripes(payload, 0, false), std::invalid_argument);
  const auto split = coll::split_stripes(payload, 4, false);
  // Reconstruction without the parity stripe present must refuse.
  EXPECT_THROW(coll::reassemble_stripes(split, 4, payload.size(), 1),
               std::invalid_argument);
  EXPECT_THROW(coll::reassemble_stripes(split, 4, payload.size(), 4),
               std::invalid_argument);
}

TEST(StripedPlanTest, FourCubePlanIsDisjointAndCovers) {
  const Topology topo(4);
  workload::Rng rng(0x5712);
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
    MulticastRequest request{topo, source,
                             workload::random_destinations(topo, source, 9,
                                                           rng)};
    const StripedPlanner planner;
    const StripedPlan plan = planner.plan(request, 1 << 20);
    EXPECT_TRUE(plan.striped);
    EXPECT_EQ(plan.trees.size(), 4u);
    EXPECT_EQ(plan.data_stripes, 4u);
    EXPECT_EQ(plan.parity_tree, -1);
    EXPECT_EQ(plan.stripe_bytes, (1u << 20) / 4);
    EXPECT_EQ(plan.jobs().size(), 4u);
    std::vector<const MulticastSchedule*> ptrs;
    for (const auto& t : plan.trees) {
      ASSERT_TRUE(t->covers(request.destinations));
      ptrs.push_back(t.get());
    }
    const auto report = core::verify_arc_disjoint(
        topo, std::span<const MulticastSchedule* const>(ptrs));
    EXPECT_TRUE(report.disjoint) << report.summary(topo);
    // The union footprint the co-scheduler sees: disjoint trees merge
    // without any arc's multiplicity exceeding the per-tree max.
    const core::ArcFootprint fp = plan.union_footprint();
    EXPECT_EQ(fp.self_max, 1u);
    std::size_t parts_total = 0;
    for (const auto* t : ptrs) {
      parts_total += core::arc_footprint(topo, *t).total_crossings();
    }
    EXPECT_EQ(fp.total_crossings(), parts_total);
  }
}

// Striped delivery must reach exactly what the single-tree serve
// reaches: every destination, in every stripe's job, under the DES.
TEST(StripedPlanTest, DeliverySetMatchesSingleTreeUnderDes) {
  const Topology topo(5);
  workload::Rng rng(0xdead);
  const NodeId source = 11;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 14,
                                                         rng)};
  const coll::ServePipeline single("wsort", nullptr);
  sim::SimConfig config;

  const auto tree = single.serve(request);
  const sim::SimResult single_result = sim::simulate_multicast(*tree, config);
  for (const NodeId d : request.destinations) {
    ASSERT_TRUE(single_result.delivery.contains(d));
  }

  const StripedPlan plan = StripedPlanner().plan(request, 1 << 20);
  const auto jobs = plan.jobs();
  const sim::MultiSimResult striped_result =
      sim::simulate_collectives(jobs, config);
  ASSERT_EQ(striped_result.per_job.size(), plan.trees.size());
  for (const sim::SimResult& r : striped_result.per_job) {
    for (const NodeId d : request.destinations) {
      EXPECT_TRUE(r.delivery.contains(d))
          << "destination " << d << " missed by a stripe";
    }
  }
}

// The reason the layer exists: for payloads far above the startup cost,
// n trees each streaming payload/n finish several times sooner than one
// tree streaming the whole payload.
TEST(StripedPlanTest, LargePayloadBeatsSingleTreeByAtLeast2x) {
  const Topology topo(6);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  constexpr std::size_t kPayload = 256 * 1024;
  sim::SimConfig config;

  const coll::ServePipeline single("wsort", nullptr);
  const auto tree = single.serve(request);
  const sim::CollectiveJob single_job{tree.get(), 0, kPayload};
  const sim::SimTime single_makespan =
      sim::simulate_collectives(std::span(&single_job, 1), config).makespan();

  const StripedPlan plan = StripedPlanner().plan(request, kPayload);
  const auto jobs = plan.jobs();
  const sim::SimTime striped_makespan =
      sim::simulate_collectives(jobs, config).makespan();

  EXPECT_LT(striped_makespan * 2, single_makespan)
      << "striped " << striped_makespan << "ns vs single " << single_makespan
      << "ns";
}

// Cache integration: cached plans are bit-identical to uncached ones,
// the relative tree is built once per chain shape, and an exact repeat
// is served from the materialized translation.
TEST(StripedPlanTest, CachedPlansAreBitIdenticalAndHit) {
  const Topology topo(5);
  workload::Rng rng(0xcafe);
  const NodeId source = 19;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 10,
                                                         rng)};
  auto cache = std::make_shared<ScheduleCache>();
  const StripedPlanner cached({}, cache);
  const StripedPlanner uncached;

  const StripedPlan a = cached.plan(request, 1 << 20);
  const auto stats_cold = cache->stats();
  EXPECT_EQ(stats_cold.total_hits(), 0u);
  EXPECT_GT(stats_cold.misses, 0u);

  const StripedPlan b = uncached.plan(request, 1 << 20);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(*a.trees[t] == *b.trees[t]) << "tree " << t;
  }

  // Identical repeat: every tree resolves from the absolute
  // (materialized-translation) level, zero builds.
  const StripedPlan c = cached.plan(request, 1 << 20);
  const auto stats_warm = cache->stats();
  EXPECT_GE(stats_warm.total_hits(), a.trees.size());
  EXPECT_EQ(stats_warm.misses, stats_cold.misses);
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(*a.trees[t] == *c.trees[t]);
  }

  // A translated source reuses the relative trees: the second source's
  // misses are only the absolute-level probes, not new relative builds.
  MulticastRequest translated{topo, static_cast<NodeId>(source ^ 5),
                             {}};
  for (const NodeId d : request.destinations) {
    translated.destinations.push_back(d ^ source ^ translated.source);
  }
  const StripedPlan d = cached.plan(translated, 1 << 20);
  for (std::size_t t = 0; t < d.trees.size(); ++t) {
    EXPECT_TRUE(*d.trees[t] ==
                *uncached.plan(translated, 1 << 20).trees[t]);
  }
}

TEST(StripedPlanTest, PipelineThresholdFallsBackToSingleTree) {
  const Topology topo(4);
  workload::Rng rng(0x42);
  const NodeId source = 6;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 7,
                                                         rng)};
  const coll::ServePipeline pipeline("wsort", nullptr);
  StripeOptions options;
  options.threshold_bytes = 64 * 1024;

  const StripedPlan small = pipeline.serve_striped(request, 512, options);
  EXPECT_FALSE(small.striped);
  ASSERT_EQ(small.trees.size(), 1u);
  EXPECT_EQ(small.stripe_bytes, 512u);
  EXPECT_TRUE(*small.trees[0] == *pipeline.serve(request));
  EXPECT_EQ(small.jobs().size(), 1u);

  const StripedPlan large =
      pipeline.serve_striped(request, 128 * 1024, options);
  EXPECT_TRUE(large.striped);
  EXPECT_EQ(large.trees.size(), 4u);
}

// A mixed-size concurrent batch (log-uniform payloads, the serving
// workload's shape) routes each request through serve_striped by its
// own payload: below-threshold requests fall back, above-threshold
// requests stripe, and the assignment is seed-deterministic.
TEST(StripedPlanTest, MixedPayloadBatchSplitsAtTheThreshold) {
  const Topology topo(5);
  workload::Rng rng(0x5717e);
  auto requests = workload::multi_tenant_mix(topo, 4, 3, 24, rng);
  workload::assign_log_uniform_payloads(requests, 256, 1 << 20, rng);

  workload::Rng rng2(0x5717e);
  auto requests2 = workload::multi_tenant_mix(topo, 4, 3, 24, rng2);
  workload::assign_log_uniform_payloads(requests2, 256, 1 << 20, rng2);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].payload_bytes, requests2[i].payload_bytes) << i;
  }

  const coll::ServePipeline pipeline("wsort", nullptr);
  StripeOptions options;
  options.threshold_bytes = 64 * 1024;
  std::size_t striped = 0;
  std::size_t fallback = 0;
  for (const workload::ConcurrentRequest& r : requests) {
    ASSERT_GE(r.payload_bytes, 256u);
    ASSERT_LE(r.payload_bytes, std::size_t{1} << 20);
    const MulticastRequest req{topo, r.source, r.destinations};
    const StripedPlan plan =
        pipeline.serve_striped(req, r.payload_bytes, options);
    EXPECT_EQ(plan.striped, r.payload_bytes >= options.threshold_bytes);
    EXPECT_EQ(plan.trees.size(), plan.striped ? topo.dim() : 1u);
    (plan.striped ? striped : fallback) += 1;
  }
  // Log-uniform over [2^8, 2^20] puts ~1/3 of the mass above 2^16:
  // both regimes must actually occur or the test proves nothing.
  EXPECT_GT(striped, 0u);
  EXPECT_GT(fallback, 0u);
}

// A root-link fault (a link incident to the source) lives in exactly one
// tree — the arc entering the root serves no tree at all — so with
// parity on, the plan drops that tree and repairs nothing.
TEST(StripedFaults, RootLinkFaultDropsExactlyOneTreeOntoParity) {
  const Topology topo(4);
  const NodeId source = 3;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  StripeOptions options;
  options.parity = true;

  fault::FaultSet faults(topo);
  // The dim-1 link at the source: relative arc 0 -> 2 is tree 1's root
  // arc; the reverse arc enters the root and belongs to no tree.
  const NodeId neighbor = source ^ 2;
  faults.fail_link(std::min(source, neighbor), 1);

  const StripedPlan plan =
      StripedPlanner(options).plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.parity_tree, 3);
  EXPECT_EQ(plan.data_stripes, 3u);
  EXPECT_EQ(plan.dropped_tree, 1);
  EXPECT_EQ(plan.repaired_trees, 0u);
  EXPECT_EQ(plan.jobs().size(), 3u);
  // The surviving trees replay untouched under the fault set.
  for (std::size_t t = 0; t < plan.trees.size(); ++t) {
    if (static_cast<int>(t) == plan.dropped_tree) continue;
    EXPECT_EQ(fault::blocked_unicasts(*plan.trees[t], faults), 0u);
  }
}

// Without parity every affected tree is detour-repaired, and the
// repaired plan must actually deliver under the simulator's hard fault
// check (failed arcs are unacquirable).
TEST(StripedFaults, RepairedPlanDeliversUnderFaultsInDes) {
  const Topology topo(4);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};

  fault::FaultSet faults(topo);
  faults.fail_link(0b0101, 1);  // interior link: hits at most two trees

  const StripedPlan plan = StripedPlanner().plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.dropped_tree, -1);
  EXPECT_GE(plan.repaired_trees, 1u);
  EXPECT_LE(plan.repaired_trees, 2u);

  sim::SimConfig config;
  config.faults = &faults;
  const auto jobs = plan.jobs();
  ASSERT_EQ(jobs.size(), 4u);
  const sim::MultiSimResult result = sim::simulate_collectives(jobs, config);
  for (const sim::SimResult& r : result.per_job) {
    for (const NodeId d : request.destinations) {
      EXPECT_TRUE(r.delivery.contains(d));
    }
  }
}

// Multi-parity byte plane: an (n - k, k) split round-trips under the
// loss of ANY k stripes, at planner shapes, on randomized payloads —
// including zero-length payloads and payloads shorter than n bytes.
TEST(StripeBytes, MultiParityRoundTripFuzz) {
  workload::Rng rng(0x25c0de);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + rng() % 6;        // 3..8 trees
    const std::size_t k = 1 + rng() % (n - 1);  // 1..n-1 parity
    const std::size_t m = n - k;
    // Bias toward the degenerate sizes the splitter must get right.
    const std::size_t sizes[] = {0, 1, m - 1, m, m + 1, 1000 + rng() % 500};
    const std::size_t size = sizes[rng() % std::size(sizes)];
    const auto payload = pattern_payload(size);
    const auto split = coll::split_stripes(payload, m, k);
    ASSERT_EQ(split.size(), n);
    // Lose exactly k distinct random stripes (data or parity).
    std::vector<std::size_t> all(n);
    std::iota(all.begin(), all.end(), 0u);
    for (std::size_t i = 0; i < k; ++i) {
      std::swap(all[i], all[i + rng() % (n - i)]);
    }
    std::vector<std::size_t> missing(all.begin(),
                                     all.begin() + static_cast<long>(k));
    auto damaged = split;
    for (const std::size_t i : missing) damaged[i].clear();
    const auto back =
        coll::reassemble_stripes(damaged, m, payload.size(), missing);
    EXPECT_EQ(back, payload)
        << "trial " << trial << " n=" << n << " k=" << k << " size=" << size;
  }
}

TEST(StripeBytes, ZeroLengthAndSubStripePayloads) {
  // Zero-length payload: all stripes empty, reassembles to empty, and
  // parity reconstruction of an "empty loss" works.
  const std::vector<std::uint8_t> empty;
  const auto zsplit = coll::split_stripes(empty, 4, std::size_t{2});
  ASSERT_EQ(zsplit.size(), 6u);
  for (const auto& s : zsplit) EXPECT_TRUE(s.empty());
  const std::size_t zmiss[2] = {0, 3};
  auto zdamaged = zsplit;
  EXPECT_TRUE(coll::reassemble_stripes(zdamaged, 4, 0, zmiss).empty());

  // Payload shorter than the stripe count: ceil-width 1, trailing data
  // stripes empty; any two losses recover.
  const auto payload = pattern_payload(2);
  const auto split = coll::split_stripes(payload, 5, std::size_t{2});
  ASSERT_EQ(split.size(), 7u);
  EXPECT_EQ(split[0].size(), 1u);
  EXPECT_EQ(split[1].size(), 1u);
  EXPECT_TRUE(split[2].empty());  // past the payload tail
  const std::size_t miss[2] = {0, 1};
  auto damaged = split;
  damaged[0].clear();
  damaged[1].clear();
  EXPECT_EQ(coll::reassemble_stripes(damaged, 5, payload.size(), miss),
            payload);
}

// Two root-blocked trees under k = 2 parity: both are dropped onto the
// parity budget, nothing needs repair, and the DES delivers every
// stripe of the surviving trees — delivered fraction 1.0 after RS
// reconstruction of the two lost stripes.
TEST(StripedFaults, TwoRootBlockedTreesDropOntoDoubleParity) {
  const Topology topo(5);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  StripeOptions options;
  options.parity_stripes = 2;
  options.verify = StripeOptions::Verify::kOn;

  fault::FaultSet faults(topo);
  faults.fail_link(0, 1);  // tree 1's root arc
  faults.fail_link(0, 3);  // tree 3's root arc

  const StripedPlan plan =
      StripedPlanner(options).plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.parity_stripes, 2u);
  EXPECT_EQ(plan.data_stripes, 3u);
  EXPECT_EQ(plan.parity_tree, 3);
  ASSERT_EQ(plan.dropped_trees.size(), 2u);
  EXPECT_TRUE(plan.dropped(1));
  EXPECT_TRUE(plan.dropped(3));
  EXPECT_EQ(plan.repaired_trees, 0u);
  EXPECT_TRUE(plan.certified_disjoint);
  EXPECT_TRUE(plan.verified);
  EXPECT_EQ(plan.jobs().size(), 3u);

  sim::SimConfig config;
  config.faults = &faults;
  const sim::MultiSimResult result =
      sim::simulate_collectives(plan.jobs(), config);
  for (const sim::SimResult& r : result.per_job) {
    for (const NodeId d : request.destinations) {
      ASSERT_TRUE(r.delivery.contains(d));
    }
  }
  // The byte plane agrees: with the two dropped stripes missing, the
  // receivers reconstruct the payload from what was delivered.
  const auto payload = pattern_payload(5000);
  auto stripes =
      coll::split_stripes(payload, plan.data_stripes, plan.parity_stripes);
  std::vector<std::size_t> missing;
  for (const int t : plan.dropped_trees) {
    missing.push_back(static_cast<std::size_t>(t));
    stripes[static_cast<std::size_t>(t)].clear();
  }
  EXPECT_EQ(coll::reassemble_stripes(stripes, plan.data_stripes,
                                     payload.size(), missing),
            payload);
}

// Randomized 6-cube sweep with k = 2: any two random link faults (any
// mix of root-incident and interior) leave a plan whose every surviving
// job delivers everywhere — delivered fraction 1.0 — and whose dropped
// stripes stay within the parity budget.
TEST(StripedFaults, SixCubeRandomDoubleFaultsDeliverEverything) {
  const Topology topo(6);
  const NodeId source = 21;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  StripeOptions options;
  options.parity_stripes = 2;
  options.verify = StripeOptions::Verify::kOn;
  const StripedPlanner planner(options);
  workload::Rng rng(0x6c0be);

  for (int trial = 0; trial < 12; ++trial) {
    fault::FaultSet faults(topo);
    while (faults.num_failed_links() < 2) {
      const auto u = static_cast<NodeId>(rng() % topo.num_nodes());
      const auto d = static_cast<Dim>(rng() % topo.dim());
      faults.fail_link(std::min(u, topo.neighbor(u, d)), d);
    }
    const StripedPlan plan = planner.plan(request, 1 << 20, faults);
    ASSERT_LE(plan.dropped_trees.size(), 2u);
    ASSERT_TRUE(plan.verified);
    if (plan.certified_disjoint) {
      ASSERT_EQ(plan.repaired_greedy, 0u);
    }
    sim::SimConfig config;
    config.faults = &faults;
    const auto jobs = plan.jobs();
    ASSERT_EQ(jobs.size(), plan.active_trees());
    const sim::MultiSimResult result = sim::simulate_collectives(jobs, config);
    std::size_t delivered = 0;
    std::size_t expected = 0;
    for (const sim::SimResult& r : result.per_job) {
      for (const NodeId d : request.destinations) {
        ++expected;
        if (r.delivery.contains(d)) ++delivered;
      }
    }
    ASSERT_EQ(delivered, expected)
        << "trial " << trial << ": " << faults.format();
  }
}

// Regression (satellite): degraded-mode cached repairs must be
// invalidated by bump_fault_epoch. Before the fix, repaired trees were
// cached without an epoch stamp, so a plan computed after the fault set
// was rearmed could replay a stale repair.
TEST(StripedFaults, DegradedPlansInvalidateOnFaultEpochBump) {
  const Topology topo(4);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  auto cache = std::make_shared<ScheduleCache>();
  const StripedPlanner planner({}, cache);

  fault::FaultSet faults(topo);
  faults.fail_link(0b0101, 1);

  const StripedPlan first = planner.plan(request, 1 << 20, faults);
  ASSERT_GE(first.repaired_disjoint, 1u);
  const auto warm_misses = cache->stats().misses;

  // Same epoch, same faults: the repaired trees come from the cache
  // (no new misses at the repair level beyond the probe pattern).
  const StripedPlan replay = planner.plan(request, 1 << 20, faults);
  ASSERT_EQ(replay.repaired_trees, first.repaired_trees);
  for (std::size_t t = 0; t < first.trees.size(); ++t) {
    EXPECT_TRUE(*first.trees[t] == *replay.trees[t]) << "tree " << t;
  }

  // Epoch bump: every cached repair is stale; the planner rebuilds
  // (misses grow) yet produces the same bits for the same fault set.
  fault::bump_fault_epoch();
  const StripedPlan rebuilt = planner.plan(request, 1 << 20, faults);
  EXPECT_GT(cache->stats().misses, warm_misses);
  ASSERT_EQ(rebuilt.repaired_trees, first.repaired_trees);
  for (std::size_t t = 0; t < first.trees.size(); ++t) {
    EXPECT_TRUE(*first.trees[t] == *rebuilt.trees[t]) << "tree " << t;
  }

  // Distinct fault sets within one epoch must not alias: the salt
  // partitions the key space by fault fingerprint.
  fault::FaultSet other(topo);
  other.fail_link(0b0011, 2);
  const StripedPlan different = planner.plan(request, 1 << 20, other);
  bool any_differ = false;
  for (std::size_t t = 0; t < rebuilt.trees.size(); ++t) {
    if (!(*rebuilt.trees[t] == *different.trees[t])) any_differ = true;
  }
  EXPECT_TRUE(any_differ);
}

// A fault that touches nothing leaves the plan identical to fault-free.
TEST(StripedFaults, UntouchedTreesAreNotRepaired) {
  const Topology topo(4);
  const NodeId source = 0;
  // Narrow destination set: the pruned trees leave most links unused.
  MulticastRequest request{topo, source, {1, 2}};
  const StripedPlanner planner;
  const StripedPlan clean = planner.plan(request, 1 << 20);

  fault::FaultSet faults(topo);
  faults.fail_link(0b1010, 2);  // far from the pruned trees
  bool any_blocked = false;
  for (const auto& t : clean.trees) {
    if (fault::blocked_unicasts(*t, faults) != 0) any_blocked = true;
  }
  ASSERT_FALSE(any_blocked);

  const StripedPlan degraded = planner.plan(request, 1 << 20, faults);
  EXPECT_EQ(degraded.dropped_tree, -1);
  EXPECT_EQ(degraded.repaired_trees, 0u);
  for (std::size_t t = 0; t < clean.trees.size(); ++t) {
    EXPECT_TRUE(*clean.trees[t] == *degraded.trees[t]);
  }
}

}  // namespace
