// The striping layer (coll/striped.hpp): payload split/reassembly with
// XOR parity, plan correctness over the IST trees, equivalence of the
// striped delivery set with single-tree delivery under the DES, the
// bandwidth win it exists for, cache integration, and the fault-epoch
// swap semantics (drop onto parity vs detour repair).

#include "coll/striped.hpp"

#include <algorithm>
#include <memory>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "coll/serve_pipeline.hpp"
#include "core/ist.hpp"
#include "fault/fault_aware.hpp"
#include "workload/concurrent.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;
using coll::ScheduleCache;
using coll::StripedPlan;
using coll::StripedPlanner;
using coll::StripeOptions;
using core::MulticastRequest;
using core::MulticastSchedule;
using hcube::Dim;
using hcube::NodeId;
using hcube::Topology;

std::vector<NodeId> broadcast_dests(const Topology& topo, NodeId source) {
  std::vector<NodeId> dests;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    if (u != source) dests.push_back(u);
  }
  return dests;
}

std::vector<std::uint8_t> pattern_payload(std::size_t n) {
  std::vector<std::uint8_t> payload(n);
  for (std::size_t i = 0; i < n; ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 131 + 17);
  }
  return payload;
}

TEST(StripeBytes, SplitReassembleRoundtrip) {
  for (const std::size_t size : {0ul, 1ul, 7ul, 10ul, 64ul, 1000ul}) {
    const auto payload = pattern_payload(size);
    for (const std::size_t stripes : {1ul, 3ul, 5ul, 8ul}) {
      const auto split = coll::split_stripes(payload, stripes, false);
      ASSERT_EQ(split.size(), stripes);
      const auto back =
          coll::reassemble_stripes(split, stripes, payload.size());
      EXPECT_EQ(back, payload) << "size=" << size << " stripes=" << stripes;
    }
  }
}

TEST(StripeBytes, ParityReconstructsAnySingleMissingStripe) {
  const auto payload = pattern_payload(1000);
  for (const std::size_t stripes : {2ul, 3ul, 7ul}) {
    const auto split = coll::split_stripes(payload, stripes, true);
    ASSERT_EQ(split.size(), stripes + 1);
    for (std::size_t missing = 0; missing < stripes; ++missing) {
      const auto back = coll::reassemble_stripes(
          split, stripes, payload.size(), static_cast<int>(missing));
      EXPECT_EQ(back, payload) << "stripes=" << stripes
                               << " missing=" << missing;
    }
  }
}

TEST(StripeBytes, RejectsBadArguments) {
  const auto payload = pattern_payload(16);
  EXPECT_THROW(coll::split_stripes(payload, 0, false), std::invalid_argument);
  const auto split = coll::split_stripes(payload, 4, false);
  // Reconstruction without the parity stripe present must refuse.
  EXPECT_THROW(coll::reassemble_stripes(split, 4, payload.size(), 1),
               std::invalid_argument);
  EXPECT_THROW(coll::reassemble_stripes(split, 4, payload.size(), 4),
               std::invalid_argument);
}

TEST(StripedPlanTest, FourCubePlanIsDisjointAndCovers) {
  const Topology topo(4);
  workload::Rng rng(0x5712);
  for (int trial = 0; trial < 4; ++trial) {
    const NodeId source = static_cast<NodeId>(rng() % topo.num_nodes());
    MulticastRequest request{topo, source,
                             workload::random_destinations(topo, source, 9,
                                                           rng)};
    const StripedPlanner planner;
    const StripedPlan plan = planner.plan(request, 1 << 20);
    EXPECT_TRUE(plan.striped);
    EXPECT_EQ(plan.trees.size(), 4u);
    EXPECT_EQ(plan.data_stripes, 4u);
    EXPECT_EQ(plan.parity_tree, -1);
    EXPECT_EQ(plan.stripe_bytes, (1u << 20) / 4);
    EXPECT_EQ(plan.jobs().size(), 4u);
    std::vector<const MulticastSchedule*> ptrs;
    for (const auto& t : plan.trees) {
      ASSERT_TRUE(t->covers(request.destinations));
      ptrs.push_back(t.get());
    }
    const auto report = core::verify_arc_disjoint(
        topo, std::span<const MulticastSchedule* const>(ptrs));
    EXPECT_TRUE(report.disjoint) << report.summary(topo);
    // The union footprint the co-scheduler sees: disjoint trees merge
    // without any arc's multiplicity exceeding the per-tree max.
    const core::ArcFootprint fp = plan.union_footprint();
    EXPECT_EQ(fp.self_max, 1u);
    std::size_t parts_total = 0;
    for (const auto* t : ptrs) {
      parts_total += core::arc_footprint(topo, *t).total_crossings();
    }
    EXPECT_EQ(fp.total_crossings(), parts_total);
  }
}

// Striped delivery must reach exactly what the single-tree serve
// reaches: every destination, in every stripe's job, under the DES.
TEST(StripedPlanTest, DeliverySetMatchesSingleTreeUnderDes) {
  const Topology topo(5);
  workload::Rng rng(0xdead);
  const NodeId source = 11;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 14,
                                                         rng)};
  const coll::ServePipeline single("wsort", nullptr);
  sim::SimConfig config;

  const auto tree = single.serve(request);
  const sim::SimResult single_result = sim::simulate_multicast(*tree, config);
  for (const NodeId d : request.destinations) {
    ASSERT_TRUE(single_result.delivery.contains(d));
  }

  const StripedPlan plan = StripedPlanner().plan(request, 1 << 20);
  const auto jobs = plan.jobs();
  const sim::MultiSimResult striped_result =
      sim::simulate_collectives(jobs, config);
  ASSERT_EQ(striped_result.per_job.size(), plan.trees.size());
  for (const sim::SimResult& r : striped_result.per_job) {
    for (const NodeId d : request.destinations) {
      EXPECT_TRUE(r.delivery.contains(d))
          << "destination " << d << " missed by a stripe";
    }
  }
}

// The reason the layer exists: for payloads far above the startup cost,
// n trees each streaming payload/n finish several times sooner than one
// tree streaming the whole payload.
TEST(StripedPlanTest, LargePayloadBeatsSingleTreeByAtLeast2x) {
  const Topology topo(6);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  constexpr std::size_t kPayload = 256 * 1024;
  sim::SimConfig config;

  const coll::ServePipeline single("wsort", nullptr);
  const auto tree = single.serve(request);
  const sim::CollectiveJob single_job{tree.get(), 0, kPayload};
  const sim::SimTime single_makespan =
      sim::simulate_collectives(std::span(&single_job, 1), config).makespan();

  const StripedPlan plan = StripedPlanner().plan(request, kPayload);
  const auto jobs = plan.jobs();
  const sim::SimTime striped_makespan =
      sim::simulate_collectives(jobs, config).makespan();

  EXPECT_LT(striped_makespan * 2, single_makespan)
      << "striped " << striped_makespan << "ns vs single " << single_makespan
      << "ns";
}

// Cache integration: cached plans are bit-identical to uncached ones,
// the relative tree is built once per chain shape, and an exact repeat
// is served from the materialized translation.
TEST(StripedPlanTest, CachedPlansAreBitIdenticalAndHit) {
  const Topology topo(5);
  workload::Rng rng(0xcafe);
  const NodeId source = 19;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 10,
                                                         rng)};
  auto cache = std::make_shared<ScheduleCache>();
  const StripedPlanner cached({}, cache);
  const StripedPlanner uncached;

  const StripedPlan a = cached.plan(request, 1 << 20);
  const auto stats_cold = cache->stats();
  EXPECT_EQ(stats_cold.total_hits(), 0u);
  EXPECT_GT(stats_cold.misses, 0u);

  const StripedPlan b = uncached.plan(request, 1 << 20);
  ASSERT_EQ(a.trees.size(), b.trees.size());
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(*a.trees[t] == *b.trees[t]) << "tree " << t;
  }

  // Identical repeat: every tree resolves from the absolute
  // (materialized-translation) level, zero builds.
  const StripedPlan c = cached.plan(request, 1 << 20);
  const auto stats_warm = cache->stats();
  EXPECT_GE(stats_warm.total_hits(), a.trees.size());
  EXPECT_EQ(stats_warm.misses, stats_cold.misses);
  for (std::size_t t = 0; t < a.trees.size(); ++t) {
    EXPECT_TRUE(*a.trees[t] == *c.trees[t]);
  }

  // A translated source reuses the relative trees: the second source's
  // misses are only the absolute-level probes, not new relative builds.
  MulticastRequest translated{topo, static_cast<NodeId>(source ^ 5),
                             {}};
  for (const NodeId d : request.destinations) {
    translated.destinations.push_back(d ^ source ^ translated.source);
  }
  const StripedPlan d = cached.plan(translated, 1 << 20);
  for (std::size_t t = 0; t < d.trees.size(); ++t) {
    EXPECT_TRUE(*d.trees[t] ==
                *uncached.plan(translated, 1 << 20).trees[t]);
  }
}

TEST(StripedPlanTest, PipelineThresholdFallsBackToSingleTree) {
  const Topology topo(4);
  workload::Rng rng(0x42);
  const NodeId source = 6;
  MulticastRequest request{topo, source,
                           workload::random_destinations(topo, source, 7,
                                                         rng)};
  const coll::ServePipeline pipeline("wsort", nullptr);
  StripeOptions options;
  options.threshold_bytes = 64 * 1024;

  const StripedPlan small = pipeline.serve_striped(request, 512, options);
  EXPECT_FALSE(small.striped);
  ASSERT_EQ(small.trees.size(), 1u);
  EXPECT_EQ(small.stripe_bytes, 512u);
  EXPECT_TRUE(*small.trees[0] == *pipeline.serve(request));
  EXPECT_EQ(small.jobs().size(), 1u);

  const StripedPlan large =
      pipeline.serve_striped(request, 128 * 1024, options);
  EXPECT_TRUE(large.striped);
  EXPECT_EQ(large.trees.size(), 4u);
}

// A mixed-size concurrent batch (log-uniform payloads, the serving
// workload's shape) routes each request through serve_striped by its
// own payload: below-threshold requests fall back, above-threshold
// requests stripe, and the assignment is seed-deterministic.
TEST(StripedPlanTest, MixedPayloadBatchSplitsAtTheThreshold) {
  const Topology topo(5);
  workload::Rng rng(0x5717e);
  auto requests = workload::multi_tenant_mix(topo, 4, 3, 24, rng);
  workload::assign_log_uniform_payloads(requests, 256, 1 << 20, rng);

  workload::Rng rng2(0x5717e);
  auto requests2 = workload::multi_tenant_mix(topo, 4, 3, 24, rng2);
  workload::assign_log_uniform_payloads(requests2, 256, 1 << 20, rng2);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].payload_bytes, requests2[i].payload_bytes) << i;
  }

  const coll::ServePipeline pipeline("wsort", nullptr);
  StripeOptions options;
  options.threshold_bytes = 64 * 1024;
  std::size_t striped = 0;
  std::size_t fallback = 0;
  for (const workload::ConcurrentRequest& r : requests) {
    ASSERT_GE(r.payload_bytes, 256u);
    ASSERT_LE(r.payload_bytes, std::size_t{1} << 20);
    const MulticastRequest req{topo, r.source, r.destinations};
    const StripedPlan plan =
        pipeline.serve_striped(req, r.payload_bytes, options);
    EXPECT_EQ(plan.striped, r.payload_bytes >= options.threshold_bytes);
    EXPECT_EQ(plan.trees.size(), plan.striped ? topo.dim() : 1u);
    (plan.striped ? striped : fallback) += 1;
  }
  // Log-uniform over [2^8, 2^20] puts ~1/3 of the mass above 2^16:
  // both regimes must actually occur or the test proves nothing.
  EXPECT_GT(striped, 0u);
  EXPECT_GT(fallback, 0u);
}

// A root-link fault (a link incident to the source) lives in exactly one
// tree — the arc entering the root serves no tree at all — so with
// parity on, the plan drops that tree and repairs nothing.
TEST(StripedFaults, RootLinkFaultDropsExactlyOneTreeOntoParity) {
  const Topology topo(4);
  const NodeId source = 3;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};
  StripeOptions options;
  options.parity = true;

  fault::FaultSet faults(topo);
  // The dim-1 link at the source: relative arc 0 -> 2 is tree 1's root
  // arc; the reverse arc enters the root and belongs to no tree.
  const NodeId neighbor = source ^ 2;
  faults.fail_link(std::min(source, neighbor), 1);

  const StripedPlan plan =
      StripedPlanner(options).plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.parity_tree, 3);
  EXPECT_EQ(plan.data_stripes, 3u);
  EXPECT_EQ(plan.dropped_tree, 1);
  EXPECT_EQ(plan.repaired_trees, 0u);
  EXPECT_EQ(plan.jobs().size(), 3u);
  // The surviving trees replay untouched under the fault set.
  for (std::size_t t = 0; t < plan.trees.size(); ++t) {
    if (static_cast<int>(t) == plan.dropped_tree) continue;
    EXPECT_EQ(fault::blocked_unicasts(*plan.trees[t], faults), 0u);
  }
}

// Without parity every affected tree is detour-repaired, and the
// repaired plan must actually deliver under the simulator's hard fault
// check (failed arcs are unacquirable).
TEST(StripedFaults, RepairedPlanDeliversUnderFaultsInDes) {
  const Topology topo(4);
  const NodeId source = 0;
  MulticastRequest request{topo, source, broadcast_dests(topo, source)};

  fault::FaultSet faults(topo);
  faults.fail_link(0b0101, 1);  // interior link: hits at most two trees

  const StripedPlan plan = StripedPlanner().plan(request, 1 << 20, faults);
  EXPECT_EQ(plan.dropped_tree, -1);
  EXPECT_GE(plan.repaired_trees, 1u);
  EXPECT_LE(plan.repaired_trees, 2u);

  sim::SimConfig config;
  config.faults = &faults;
  const auto jobs = plan.jobs();
  ASSERT_EQ(jobs.size(), 4u);
  const sim::MultiSimResult result = sim::simulate_collectives(jobs, config);
  for (const sim::SimResult& r : result.per_job) {
    for (const NodeId d : request.destinations) {
      EXPECT_TRUE(r.delivery.contains(d));
    }
  }
}

// A fault that touches nothing leaves the plan identical to fault-free.
TEST(StripedFaults, UntouchedTreesAreNotRepaired) {
  const Topology topo(4);
  const NodeId source = 0;
  // Narrow destination set: the pruned trees leave most links unused.
  MulticastRequest request{topo, source, {1, 2}};
  const StripedPlanner planner;
  const StripedPlan clean = planner.plan(request, 1 << 20);

  fault::FaultSet faults(topo);
  faults.fail_link(0b1010, 2);  // far from the pruned trees
  bool any_blocked = false;
  for (const auto& t : clean.trees) {
    if (fault::blocked_unicasts(*t, faults) != 0) any_blocked = true;
  }
  ASSERT_FALSE(any_blocked);

  const StripedPlan degraded = planner.plan(request, 1 << 20, faults);
  EXPECT_EQ(degraded.dropped_tree, -1);
  EXPECT_EQ(degraded.repaired_trees, 0u);
  for (std::size_t t = 0; t < clean.trees.size(); ++t) {
    EXPECT_TRUE(*clean.trees[t] == *degraded.trees[t]);
  }
}

}  // namespace
