#include "hcube/subcube.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

namespace hypercast::hcube {
namespace {

TEST(Subcube, Definition2Examples) {
  // S = (2, 10b) in a 4-cube: nodes whose high 2 bits are 10 -> {8,9,10,11}.
  const Topology topo(4, Resolution::HighToLow);
  const Subcube s{2, 0b10};
  for (NodeId u = 0; u < 16; ++u) {
    EXPECT_EQ(s.contains(topo, u), (u >> 2) == 0b10) << "node " << u;
  }
  EXPECT_EQ(s.size(), 4u);
  EXPECT_EQ(s.first_key(), 8u);
}

TEST(Subcube, WholeCubeContainsEverything) {
  const Topology topo(5);
  const Subcube s = whole_cube(topo);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    EXPECT_TRUE(s.contains(topo, u));
  }
}

TEST(Subcube, ZeroDimSubcubeIsSingleNode) {
  const Topology topo(4);
  for (NodeId u = 0; u < 16; ++u) {
    const Subcube s{0, u};
    EXPECT_EQ(s.size(), 1u);
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(s.contains(topo, v), u == v);
    }
  }
}

TEST(Subcube, HalvesPartitionParent) {
  const Topology topo(6);
  std::mt19937 rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const Dim ns = std::uniform_int_distribution<Dim>(1, 6)(rng);
    const std::uint32_t mask = std::uniform_int_distribution<std::uint32_t>(
        0, (1u << (6 - ns)) - 1)(rng);
    const Subcube s{ns, mask};
    const Subcube lo = s.lower_half();
    const Subcube hi = s.upper_half();
    for (NodeId u = 0; u < topo.num_nodes(); ++u) {
      const bool in_s = s.contains(topo, u);
      const bool in_lo = lo.contains(topo, u);
      const bool in_hi = hi.contains(topo, u);
      EXPECT_EQ(in_s, in_lo || in_hi);
      EXPECT_FALSE(in_lo && in_hi);
    }
    EXPECT_EQ(lo.parent(), s);
    EXPECT_EQ(hi.parent(), s);
  }
}

/// Lemma 2: subcube membership is an interval of addresses — for any
/// x <= y <= z with x, z in S, y is in S. (Stated in key space; for
/// high-to-low resolution keys are the addresses themselves.)
TEST(Subcube, LemmaTwoContiguity) {
  const Topology topo(6, Resolution::HighToLow);
  std::mt19937 rng(7);
  for (int trial = 0; trial < 200; ++trial) {
    const Dim ns = std::uniform_int_distribution<Dim>(0, 6)(rng);
    const std::uint32_t mask = std::uniform_int_distribution<std::uint32_t>(
        0, (1u << (6 - ns)) - 1)(rng);
    const Subcube s{ns, mask};
    std::uniform_int_distribution<NodeId> dist(0, 63);
    const NodeId x = dist(rng);
    const NodeId z = dist(rng);
    if (!s.contains(topo, x) || !s.contains(topo, z)) continue;
    const NodeId lo = std::min(x, z);
    const NodeId hi = std::max(x, z);
    for (NodeId y = lo; y <= hi; ++y) {
      EXPECT_TRUE(s.contains(topo, y));
    }
  }
}

TEST(Subcube, MembersAreExactlyTheKeyInterval) {
  for (const Resolution res : {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(5, res);
    for (Dim ns = 0; ns <= 5; ++ns) {
      for (std::uint32_t mask = 0; mask < (1u << (5 - ns)); ++mask) {
        const Subcube s{ns, mask};
        const auto members = subcube_members(topo, s);
        ASSERT_EQ(members.size(), s.size());
        for (std::size_t i = 0; i < members.size(); ++i) {
          EXPECT_TRUE(s.contains(topo, members[i]));
          EXPECT_EQ(topo.key(members[i]), s.first_key() + i);
        }
        // Cross-check against brute force membership count.
        std::size_t count = 0;
        for (NodeId u = 0; u < topo.num_nodes(); ++u) {
          if (s.contains(topo, u)) ++count;
        }
        EXPECT_EQ(count, s.size());
      }
    }
  }
}

TEST(Subcube, AllSubcubesPartitionTheCube) {
  const Topology topo(6);
  for (Dim ns = 0; ns <= 6; ++ns) {
    const auto cubes = all_subcubes(topo, ns);
    EXPECT_EQ(cubes.size(), std::size_t{1} << (6 - ns));
    std::vector<int> covered(topo.num_nodes(), 0);
    for (const Subcube& s : cubes) {
      for (NodeId u = 0; u < topo.num_nodes(); ++u) {
        if (s.contains(topo, u)) ++covered[u];
      }
    }
    for (const int c : covered) EXPECT_EQ(c, 1);
  }
}

TEST(Subcube, SmallestCommonSubcube) {
  const Topology topo(4, Resolution::HighToLow);
  // 0101 and 0111 share high bits 01 -> S = (2, 01).
  EXPECT_EQ(smallest_common_subcube(topo, 0b0101, 0b0111), (Subcube{2, 0b01}));
  // Same node: dimension 0 subcube.
  EXPECT_EQ(smallest_common_subcube(topo, 0b0101, 0b0101),
            (Subcube{0, 0b0101}));
  // Differ in the top bit: the whole cube.
  EXPECT_EQ(smallest_common_subcube(topo, 0b0000, 0b1000), (Subcube{4, 0}));
}

TEST(Subcube, SmallestCommonSubcubeIsMinimal) {
  const Topology topo(6, Resolution::LowToHigh);
  std::mt19937 rng(11);
  std::uniform_int_distribution<NodeId> dist(0, 63);
  for (int trial = 0; trial < 300; ++trial) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    const Subcube s = smallest_common_subcube(topo, u, v);
    EXPECT_TRUE(s.contains(topo, u));
    EXPECT_TRUE(s.contains(topo, v));
    if (s.ns > 0) {
      // No half contains both (otherwise s would not be minimal).
      const bool both_lo = s.lower_half().contains(topo, u) &&
                           s.lower_half().contains(topo, v);
      const bool both_hi = s.upper_half().contains(topo, u) &&
                           s.upper_half().contains(topo, v);
      EXPECT_FALSE(both_lo || both_hi);
    }
  }
}

}  // namespace
}  // namespace hypercast::hcube
