#include "hcube/topology.hpp"

#include <gtest/gtest.h>

#include <random>
#include <set>

namespace hypercast::hcube {
namespace {

TEST(Topology, SizesFollowDimension) {
  for (Dim n = 0; n <= 12; ++n) {
    const Topology topo(n);
    EXPECT_EQ(topo.num_nodes(), std::size_t{1} << n);
    EXPECT_EQ(topo.num_arcs(), (std::size_t{1} << n) * static_cast<std::size_t>(n));
  }
}

TEST(Topology, ContainsMatchesRange) {
  const Topology topo(4);
  for (NodeId u = 0; u < 16; ++u) EXPECT_TRUE(topo.contains(u));
  EXPECT_FALSE(topo.contains(16));
  EXPECT_FALSE(topo.contains(255));
}

TEST(Topology, NeighborFlipsExactlyOneBit) {
  const Topology topo(5);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (Dim d = 0; d < topo.dim(); ++d) {
      const NodeId v = topo.neighbor(u, d);
      EXPECT_EQ(hamming(u, v), 1);
      EXPECT_TRUE(test_bit(u ^ v, d));
      EXPECT_EQ(topo.neighbor(v, d), u) << "neighbor must be an involution";
      EXPECT_TRUE(topo.adjacent(u, v));
    }
  }
}

TEST(Topology, AdjacencyIsHammingOne) {
  const Topology topo(4);
  for (NodeId u = 0; u < 16; ++u) {
    for (NodeId v = 0; v < 16; ++v) {
      EXPECT_EQ(topo.adjacent(u, v), hamming(u, v) == 1);
    }
  }
}

TEST(Topology, DistanceIsHamming) {
  const Topology topo(6);
  std::mt19937 rng(3);
  std::uniform_int_distribution<NodeId> dist(0, 63);
  for (int i = 0; i < 500; ++i) {
    const NodeId u = dist(rng);
    const NodeId v = dist(rng);
    EXPECT_EQ(topo.distance(u, v), popcount(u ^ v));
    EXPECT_EQ(topo.distance(u, v), topo.distance(v, u));
    EXPECT_EQ(topo.distance(u, u), 0);
  }
}

TEST(Topology, ArcIndexIsDenseBijection) {
  const Topology topo(4);
  std::set<std::size_t> seen;
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (Dim d = 0; d < topo.dim(); ++d) {
      const Arc a{u, d};
      const std::size_t idx = topo.arc_index(a);
      EXPECT_LT(idx, topo.num_arcs());
      EXPECT_TRUE(seen.insert(idx).second);
      EXPECT_EQ(topo.arc_at(idx), a);
    }
  }
  EXPECT_EQ(seen.size(), topo.num_arcs());
}

TEST(Topology, KeyIsIdentityForHighToLow) {
  const Topology topo(6, Resolution::HighToLow);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    EXPECT_EQ(topo.key(u), u);
    EXPECT_EQ(topo.unkey(u), u);
  }
}

TEST(Topology, KeyIsBitReverseForLowToHigh) {
  const Topology topo(6, Resolution::LowToHigh);
  for (NodeId u = 0; u < topo.num_nodes(); ++u) {
    EXPECT_EQ(topo.key(u), bit_reverse(u, 6));
    EXPECT_EQ(topo.unkey(topo.key(u)), u);
  }
}

TEST(Topology, FormatZeroPads) {
  const Topology topo(4);
  EXPECT_EQ(topo.format(0), "0000");
  EXPECT_EQ(topo.format(5), "0101");
  EXPECT_EQ(topo.format(15), "1111");
  const Topology topo6(6);
  EXPECT_EQ(topo6.format(5), "000101");
}

TEST(Topology, EqualityComparesDimAndResolution) {
  EXPECT_EQ(Topology(4), Topology(4));
  EXPECT_FALSE(Topology(4) == Topology(5));
  EXPECT_FALSE(Topology(4, Resolution::HighToLow) ==
               Topology(4, Resolution::LowToHigh));
}

TEST(Topology, ResolutionToString) {
  EXPECT_EQ(to_string(Resolution::HighToLow), "high-to-low");
  EXPECT_EQ(to_string(Resolution::LowToHigh), "low-to-high");
}

}  // namespace
}  // namespace hypercast::hcube
