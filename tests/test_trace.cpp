#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace hypercast::sim {
namespace {

using hcube::Topology;

MessageTrace make(hcube::NodeId from, hcube::NodeId to, SimTime issue,
                  SimTime blocked = 0) {
  MessageTrace m;
  m.from = from;
  m.to = to;
  m.hops = 2;
  m.issue = issue;
  m.header_start = issue + 1000;
  m.path_acquired = issue + 2000;
  m.tail = issue + 10000;
  m.done = issue + 12000;
  m.blocked_ns = blocked;
  return m;
}

TEST(Trace, FormatsOneLinePerMessage) {
  const Topology topo(4);
  Trace trace;
  trace.messages.push_back(make(0, 5, 0));
  trace.messages.push_back(make(5, 12, 20000));
  const std::string out = trace.format(topo);
  EXPECT_NE(out.find("0000 -> 0101"), std::string::npos);
  EXPECT_NE(out.find("0101 -> 1100"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 2);
}

TEST(Trace, SortsByIssueTime) {
  const Topology topo(4);
  Trace trace;
  trace.messages.push_back(make(5, 12, 20000));  // later first
  trace.messages.push_back(make(0, 5, 0));
  const std::string out = trace.format(topo);
  EXPECT_LT(out.find("0000 -> 0101"), out.find("0101 -> 1100"));
}

TEST(Trace, MarksBlockedMessages) {
  const Topology topo(4);
  Trace trace;
  trace.messages.push_back(make(0, 5, 0));
  trace.messages.push_back(make(0, 7, 0, /*blocked=*/5000));
  const std::string out = trace.format(topo);
  EXPECT_NE(out.find("BLOCKED"), std::string::npos);
  // Only the blocked message carries the marker.
  EXPECT_EQ(out.find("BLOCKED"), out.rfind("BLOCKED"));
}

TEST(Trace, SingularHopSpelling) {
  const Topology topo(4);
  Trace trace;
  auto one = make(0, 1, 0);
  one.hops = 1;
  trace.messages.push_back(one);
  trace.messages.push_back(make(0, 5, 100));
  const std::string out = trace.format(topo);
  EXPECT_NE(out.find("(1 hop)"), std::string::npos);
  EXPECT_NE(out.find("(2 hops)"), std::string::npos);
}

TEST(Trace, EmptyTraceFormatsEmpty) {
  const Topology topo(3);
  EXPECT_TRUE(Trace{}.format(topo).empty());
}

}  // namespace
}  // namespace hypercast::sim
