// The property the schedule cache is built on: for every
// translation-invariant algorithm, build(u, D) is exactly the node-wise
// XOR-relabeling by u of build(0, u ^ D) — same topology, same append
// order, same payload contents (MulticastSchedule::operator==).
//
// Verified exhaustively on the 4-cube (every destination subset for a
// spot-checked algorithm pair, every subset up to size 4 for the full
// algorithm x resolution matrix) and by randomized sweeps on the
// 6-cube. This is what licenses ScheduleCache to serve one relative
// entry to every translation of its chain.

#include <gtest/gtest.h>

#include <bit>

#include "core/registry.hpp"
#include "test_util.hpp"
#include "workload/random_sets.hpp"

namespace hypercast {
namespace {

using namespace testutil;

constexpr const char* kInvariantAlgorithms[] = {"ucube", "maxport", "combine",
                                                "wsort"};

/// The translated request: every destination XORed with the mask.
MulticastRequest translate(const MulticastRequest& rel, NodeId mask) {
  MulticastRequest out{rel.topo, static_cast<NodeId>(rel.source ^ mask), {}};
  out.destinations.reserve(rel.destinations.size());
  for (const NodeId d : rel.destinations) {
    out.destinations.push_back(static_cast<NodeId>(d ^ mask));
  }
  return out;
}

/// Check build(mask, S ^ mask) == relabel(build(0, S), mask) for every
/// source mask of the cube.
void expect_invariant_all_translations(const core::AlgorithmEntry& algo,
                                       const MulticastRequest& relative) {
  const auto rel = algo.build(relative);
  for (NodeId mask = 0;
       mask < static_cast<NodeId>(relative.topo.num_nodes()); ++mask) {
    const auto direct = algo.build(translate(relative, mask));
    MulticastSchedule expected(relative.topo, mask);
    expected.assign_translated(rel, mask);
    ASSERT_TRUE(expected == direct)
        << algo.name << " is not translation-invariant at mask " << mask
        << " (m = " << relative.destinations.size() << ")";
  }
}

TEST(TranslationInvariance, Exhaustive4CubeEverySubset) {
  // Every non-empty destination subset of the 4-cube, every source
  // translation. The full subset space is large, so it runs for one
  // algorithm per resolution order (the size-limited matrix test below
  // covers the full algorithm set).
  for (const auto& [name, res] :
       {std::pair{"ucube", Resolution::HighToLow},
        std::pair{"wsort", Resolution::LowToHigh}}) {
    const Topology topo(4, res);
    const auto& algo = core::find_algorithm(name);
    for (std::uint32_t bits = 1; bits < (1u << 15); ++bits) {
      MulticastRequest rel{topo, 0, {}};
      for (NodeId d = 1; d < 16; ++d) {
        if (bits & (1u << (d - 1))) rel.destinations.push_back(d);
      }
      const auto relative = algo.build(rel);
      // Spot-check 3 masks per subset (all 16 for the small subsets);
      // the randomized 6-cube sweep covers the rest of the space.
      const NodeId step = rel.destinations.size() <= 4 ? 1 : 5;
      for (NodeId mask = 0; mask < 16; mask += step) {
        const auto direct = algo.build(translate(rel, mask));
        MulticastSchedule expected(topo, mask);
        expected.assign_translated(relative, mask);
        ASSERT_TRUE(expected == direct)
            << name << " subset " << bits << " mask " << int(mask);
      }
    }
  }
}

TEST(TranslationInvariance, Exhaustive4CubeAllAlgorithmsSmallSubsets) {
  // Every subset of size <= 4, every mask, all four algorithms, both
  // resolution orders.
  for (const Resolution res :
       {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(4, res);
    for (const char* name : kInvariantAlgorithms) {
      const auto& algo = core::find_algorithm(name);
      for (std::uint32_t bits = 1; bits < (1u << 15); ++bits) {
        if (std::popcount(bits) > 4) continue;
        MulticastRequest rel{topo, 0, {}};
        for (NodeId d = 1; d < 16; ++d) {
          if (bits & (1u << (d - 1))) rel.destinations.push_back(d);
        }
        expect_invariant_all_translations(algo, rel);
      }
    }
  }
}

TEST(TranslationInvariance, Randomized6Cube) {
  for (const Resolution res :
       {Resolution::HighToLow, Resolution::LowToHigh}) {
    const Topology topo(6, res);
    workload::Rng rng(0xCAFE);
    for (const char* name : kInvariantAlgorithms) {
      const auto& algo = core::find_algorithm(name);
      for (int trial = 0; trial < 40; ++trial) {
        const std::size_t m = 1 + rng() % (topo.num_nodes() - 1);
        MulticastRequest rel{
            topo, 0, workload::random_destinations(topo, 0, m, rng)};
        const auto relative = algo.build(rel);
        // Random masks rather than all 64, to keep the sweep fast.
        for (int t = 0; t < 8; ++t) {
          const NodeId mask = static_cast<NodeId>(rng() % topo.num_nodes());
          const auto direct = algo.build(translate(rel, mask));
          MulticastSchedule expected(topo, mask);
          expected.assign_translated(relative, mask);
          ASSERT_TRUE(expected == direct)
              << name << " trial " << trial << " mask " << int(mask);
        }
      }
    }
  }
}

TEST(TranslationInvariance, TranslatedScheduleIsValidAndCovers) {
  // The relabeled schedule is not just equal to the direct build — it is
  // structurally valid and covers the translated destination set.
  const Topology topo(6, Resolution::HighToLow);
  workload::Rng rng(0xBEEF);
  const auto& algo = core::find_algorithm("wsort");
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m = 1 + rng() % 40;
    MulticastRequest rel{topo, 0,
                         workload::random_destinations(topo, 0, m, rng)};
    const auto relative = algo.build(rel);
    const NodeId mask = static_cast<NodeId>(rng() % topo.num_nodes());
    MulticastSchedule translated(topo, mask);
    translated.assign_translated(relative, mask);
    EXPECT_NO_THROW(translated.validate());
    EXPECT_TRUE(translated.covers(translate(rel, mask).destinations));
  }
}

}  // namespace
}  // namespace hypercast
