#include "core/chain_algorithms.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "core/bounds.hpp"
#include "core/contention.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

class UCubeProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(UCubeProperty, CoversExactlyTheDestinations) {
  const Topology topo = this->topo();
  workload::Rng rng(101);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    EXPECT_TRUE(covers_exactly(ucube(req), req));
  }
}

TEST_P(UCubeProperty, OnePortStepsMeetTheTightLowerBound) {
  // U-cube achieves exactly ceil(log2(m+1)) steps on one-port systems.
  const Topology topo = this->topo();
  workload::Rng rng(103);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 60);
    const auto req = random_request(topo, m, rng);
    const auto steps = assign_steps(ucube(req), PortModel::one_port(),
                                    req.destinations);
    EXPECT_EQ(steps.total_steps, one_port_step_lower_bound(m)) << "m=" << m;
  }
}

TEST_P(UCubeProperty, OnePortScheduleIsContentionFree) {
  const Topology topo = this->topo();
  workload::Rng rng(107);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 25);
    const auto req = random_request(topo, m, rng);
    const auto schedule = ucube(req);
    const auto report =
        check_contention(schedule, PortModel::one_port());
    EXPECT_TRUE(report.contention_free())
        << report.summary(topo) << "\n" << schedule.format_tree();
  }
}

TEST_P(UCubeProperty, BroadcastReachesEveryoneInNSteps) {
  const Topology topo = this->topo();
  if (topo.dim() == 0) GTEST_SKIP();
  std::vector<NodeId> dests;
  for (NodeId u = 1; u < topo.num_nodes(); ++u) dests.push_back(u);
  const MulticastRequest req{topo, 0, dests};
  const auto schedule = ucube(req);
  EXPECT_TRUE(covers_exactly(schedule, req));
  const auto steps =
      assign_steps(schedule, PortModel::one_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, topo.dim());
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, UCubeProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(UCube, SingleDestinationIsOneUnicast) {
  const Topology topo(4);
  const MulticastRequest req{topo, 3, {9}};
  const auto s = ucube(req);
  EXPECT_EQ(s.num_unicasts(), 1u);
  EXPECT_EQ(children_of(s, 3), (std::vector<NodeId>{9}));
}

TEST(UCube, EmptyDestinationSetYieldsEmptySchedule) {
  const Topology topo(4);
  const MulticastRequest req{topo, 3, {}};
  const auto s = ucube(req);
  EXPECT_EQ(s.num_unicasts(), 0u);
  EXPECT_NO_THROW(s.validate());
}

TEST(UCube, PayloadsMatchSubtrees) {
  // The address field sent with each unicast must equal the subtree the
  // recipient becomes responsible for (minus itself).
  const Topology topo(5);
  workload::Rng rng(109);
  const auto req = random_request(topo, 17, rng);
  const auto s = ucube(req);
  for (const NodeId sender : s.senders()) {
    for (const Send& send : s.sends_from(sender)) {
      std::set<NodeId> expected;
      std::deque<NodeId> frontier{send.to};
      while (!frontier.empty()) {
        const NodeId u = frontier.front();
        frontier.pop_front();
        for (const Send& child : s.sends_from(u)) {
          expected.insert(child.to);
          frontier.push_back(child.to);
        }
      }
      const std::set<NodeId> payload(send.payload.begin(),
                                     send.payload.end());
      EXPECT_EQ(payload, expected);
    }
  }
}

TEST(UCube, DeterministicAcrossCalls) {
  const Topology topo(6);
  workload::Rng rng(113);
  const auto req = random_request(topo, 20, rng);
  const auto a = ucube(req);
  const auto b = ucube(req);
  EXPECT_EQ(a.format_tree(), b.format_tree());
}

}  // namespace
}  // namespace hypercast::core
