#ifndef HYPERCAST_TESTS_TEST_UTIL_HPP
#define HYPERCAST_TESTS_TEST_UTIL_HPP

#include <algorithm>
#include <set>
#include <vector>

#include "core/multicast.hpp"
#include "core/registry.hpp"
#include "core/stepwise.hpp"
#include "workload/random_sets.hpp"

namespace hypercast::testutil {

using core::MulticastRequest;
using core::MulticastSchedule;
using hcube::NodeId;
using hcube::Resolution;
using hcube::Topology;

/// Owned copy of a payload view (schedule sends carry spans into the
/// schedule's pool; copy before comparing or outliving the schedule).
inline std::vector<NodeId> to_vec(std::span<const NodeId> payload) {
  return {payload.begin(), payload.end()};
}

/// The children of `from` in issue order.
inline std::vector<NodeId> children_of(const MulticastSchedule& s,
                                       NodeId from) {
  std::vector<NodeId> out;
  for (const core::Send& send : s.sends_from(from)) out.push_back(send.to);
  return out;
}

/// Sorted recipient set.
inline std::set<NodeId> recipient_set(const MulticastSchedule& s) {
  const auto r = s.recipients();
  return {r.begin(), r.end()};
}

/// Draw a random request: random source, m random destinations.
inline MulticastRequest random_request(const Topology& topo, std::size_t m,
                                       workload::Rng& rng) {
  const NodeId source =
      static_cast<NodeId>(rng() % static_cast<std::uint64_t>(topo.num_nodes()));
  auto dests = workload::random_destinations(topo, source, m, rng);
  return MulticastRequest{topo, source, std::move(dests)};
}

/// Assert-style helper: schedule is structurally valid and reaches
/// exactly the requested destinations (no extra processor involvement),
/// returning the recipients for further checks.
inline ::testing::AssertionResult covers_exactly(
    const MulticastSchedule& schedule, const MulticastRequest& req) {
  try {
    schedule.validate();
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure() << "invalid schedule: " << e.what();
  }
  const auto got = recipient_set(schedule);
  const std::set<NodeId> want(req.destinations.begin(),
                              req.destinations.end());
  if (got != want) {
    return ::testing::AssertionFailure()
           << "recipients != destinations (got " << got.size() << ", want "
           << want.size() << ")";
  }
  return ::testing::AssertionSuccess();
}

/// As above, but allowing relay recipients (store-and-forward trees).
inline ::testing::AssertionResult covers_at_least(
    const MulticastSchedule& schedule, const MulticastRequest& req) {
  try {
    schedule.validate();
  } catch (const std::exception& e) {
    return ::testing::AssertionFailure() << "invalid schedule: " << e.what();
  }
  if (!schedule.covers(req.destinations)) {
    return ::testing::AssertionFailure() << "some destination never receives";
  }
  return ::testing::AssertionSuccess();
}

}  // namespace hypercast::testutil

#endif  // HYPERCAST_TESTS_TEST_UTIL_HPP
