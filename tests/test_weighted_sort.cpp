#include "core/weighted_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

TEST(WeightedSort, PaperFigure8Example) {
  // D = {0, 1, 3, 5, 7, 11, 12, 14, 15} becomes
  // {0, 1, 3, 5, 7, 14, 15, 12, 11}: subcube {11,12,14,15} swaps its
  // halves ({11} vs {12,14,15}), and then {12} vs {14,15} swap too.
  const Topology topo(4, Resolution::HighToLow);
  std::vector<NodeId> chain{0, 1, 3, 5, 7, 11, 12, 14, 15};
  const std::vector<NodeId> expected{0, 1, 3, 5, 7, 14, 15, 12, 11};

  auto faithful = chain;
  weighted_sort_faithful(topo, faithful);
  EXPECT_EQ(faithful, expected);

  auto fast = chain;
  weighted_sort_fast(topo, fast);
  EXPECT_EQ(fast, expected);
}

TEST(WeightedSort, KeepsSourceFirstEvenWhenItsHalfIsSmaller) {
  // Source 0 alone in the lower half vs seven nodes in the upper half:
  // the first != 0 guard must keep 0 at position 0 (Theorem 5, item 3).
  const Topology topo(4, Resolution::HighToLow);
  std::vector<NodeId> chain{0, 8, 9, 10, 11, 12, 13, 14};
  weighted_sort_faithful(topo, chain);
  EXPECT_EQ(chain.front(), 0u);
}

TEST(WeightedSort, MoreCrowdedHalfComesFirstBelowTheSource) {
  // Inside the non-source subcube the crowded half must lead. With
  // destinations {8, 12, 13, 14, 15}: subcube (3,1) splits into
  // {8} and {12,13,14,15}, so the upper half leads after sorting.
  const Topology topo(4, Resolution::HighToLow);
  std::vector<NodeId> chain{0, 8, 12, 13, 14, 15};
  weighted_sort_faithful(topo, chain);
  EXPECT_EQ(chain, (std::vector<NodeId>{0, 12, 13, 14, 15, 8}));
}

class WeightedSortProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

/// Theorem 5: the output is a cube-ordered permutation of the input
/// with the source still in first position.
TEST_P(WeightedSortProperty, TheoremFive) {
  const Topology topo = this->topo();
  workload::Rng rng(401);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
    const auto req = random_request(topo, m, rng);
    const auto input =
        hcube::make_relative_chain(topo, req.source, req.destinations);
    auto output = input;
    weighted_sort_faithful(topo, output);

    EXPECT_EQ(output.front(), req.source);
    EXPECT_TRUE(hcube::is_cube_ordered(topo, output))
        << "not cube ordered (m=" << m << ")";
    auto a = input;
    auto b = output;
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b) << "not a permutation";
  }
}

/// The fast O(m log N) implementation is output-identical to the
/// faithful recursion from Figure 7.
TEST_P(WeightedSortProperty, FastMatchesFaithful) {
  const Topology topo = this->topo();
  workload::Rng rng(409);
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
    const auto req = random_request(topo, m, rng);
    auto faithful =
        hcube::make_relative_chain(topo, req.source, req.destinations);
    auto fast = faithful;
    weighted_sort_faithful(topo, faithful);
    weighted_sort_fast(topo, fast);
    EXPECT_EQ(faithful, fast) << "m=" << m;
  }
}

/// Every subcube's more crowded half precedes the less crowded one
/// (except across the source's pinned position).
TEST_P(WeightedSortProperty, CrowdedHalfLeads) {
  const Topology topo = this->topo();
  workload::Rng rng(419);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m =
        2 + rng() % std::min<std::size_t>(topo.num_nodes() - 2, 40);
    const auto req = random_request(topo, m, rng);
    auto chain =
        hcube::make_relative_chain(topo, req.source, req.destinations);
    weighted_sort_faithful(topo, chain);

    // For every subcube S (in relative-key space) not containing the
    // source, with both halves populated: the first chain element of S
    // must come from the more (or equally) crowded half.
    std::vector<std::uint32_t> rel;
    for (const NodeId u : chain) {
      rel.push_back(hcube::relative_key(topo, req.source, u));
    }
    for (hcube::Dim ns = 1; ns <= topo.dim(); ++ns) {
      for (std::uint32_t mask = 0; mask < (1u << (topo.dim() - ns)); ++mask) {
        if (mask == 0) {
          // Subcubes with mask 0 contain relative key 0 == the source;
          // the pin suppresses their swap, so skip them.
          continue;
        }
        std::size_t lo = 0;
        std::size_t hi = 0;
        std::size_t first_index = chain.size();
        bool first_in_hi = false;
        for (std::size_t i = 0; i < rel.size(); ++i) {
          if ((rel[i] >> ns) != mask) continue;
          const bool in_hi = hcube::test_bit(rel[i], ns - 1);
          if (first_index == chain.size()) {
            first_index = i;
            first_in_hi = in_hi;
          }
          (in_hi ? hi : lo)++;
        }
        if (lo == 0 || hi == 0) continue;
        if (first_in_hi) {
          EXPECT_GE(hi, lo) << "ns=" << ns << " mask=" << mask;
        } else {
          EXPECT_GE(lo, hi) << "ns=" << ns << " mask=" << mask;
        }
      }
    }
  }
}

TEST_P(WeightedSortProperty, IdempotentOnItsOwnOutput) {
  // Re-sorting a weighted chain must not change it (the crowded-first
  // arrangement is a fixed point). weighted_sort expects an ascending
  // chain, so verify via the fast path on the sorted halves instead:
  // applying faithful twice through re-sorting reproduces the output.
  const Topology topo = this->topo();
  workload::Rng rng(421);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    auto once = hcube::make_relative_chain(topo, req.source, req.destinations);
    weighted_sort_faithful(topo, once);
    auto again = hcube::make_relative_chain(topo, req.source, req.destinations);
    weighted_sort_faithful(topo, again);
    EXPECT_EQ(once, again);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, WeightedSortProperty,
    ::testing::Combine(::testing::Values(2, 3, 4, 6, 8, 10),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(WeightedSort, TinyChainsAreUntouched) {
  const Topology topo(4);
  std::vector<NodeId> empty;
  weighted_sort_faithful(topo, empty);
  EXPECT_TRUE(empty.empty());
  std::vector<NodeId> one{5};
  weighted_sort_faithful(topo, one);
  EXPECT_EQ(one, (std::vector<NodeId>{5}));
  std::vector<NodeId> two{5, 7};
  weighted_sort_faithful(topo, two);
  EXPECT_EQ(two, (std::vector<NodeId>{5, 7}));
}

}  // namespace
}  // namespace hypercast::core
