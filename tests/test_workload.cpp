#include "workload/random_sets.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "workload/patterns.hpp"

namespace hypercast::workload {
namespace {

TEST(RandomSets, DistinctAndExcludeSource) {
  const Topology topo(6);
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId source = static_cast<NodeId>(rng() % 64);
    const std::size_t m = 1 + rng() % 63;
    const auto dests = random_destinations(topo, source, m, rng);
    EXPECT_EQ(dests.size(), m);
    std::set<NodeId> unique(dests.begin(), dests.end());
    EXPECT_EQ(unique.size(), m);
    EXPECT_FALSE(unique.contains(source));
    for (const NodeId d : dests) EXPECT_TRUE(topo.contains(d));
  }
}

TEST(RandomSets, FullSetIsEveryOtherNode) {
  const Topology topo(4);
  Rng rng(2);
  const auto dests = random_destinations(topo, 5, 15, rng);
  std::set<NodeId> unique(dests.begin(), dests.end());
  EXPECT_EQ(unique.size(), 15u);
  EXPECT_FALSE(unique.contains(5));
}

TEST(RandomSets, DeterministicForEqualSeeds) {
  const Topology topo(8);
  Rng a(42);
  Rng b(42);
  EXPECT_EQ(random_destinations(topo, 0, 30, a),
            random_destinations(topo, 0, 30, b));
}

TEST(RandomSets, DifferentSeedsDiffer) {
  const Topology topo(8);
  Rng a(42);
  Rng b(43);
  EXPECT_NE(random_destinations(topo, 0, 30, a),
            random_destinations(topo, 0, 30, b));
}

TEST(RandomSets, RoughlyUniformCoverage) {
  // Across many draws every node should appear with similar frequency.
  const Topology topo(5);
  Rng rng(7);
  std::vector<int> hits(32, 0);
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    for (const NodeId d : random_destinations(topo, 0, 8, rng)) {
      ++hits[d];
    }
  }
  // Expected hits per node: 2000 * 8 / 31 ~ 516.
  for (NodeId u = 1; u < 32; ++u) {
    EXPECT_GT(hits[u], 350) << "node " << u;
    EXPECT_LT(hits[u], 700) << "node " << u;
  }
  EXPECT_EQ(hits[0], 0);
}

TEST(RandomSets, DeriveSeedSeparatesCoordinates) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t m = 0; m < 30; ++m) {
    for (std::uint64_t trial = 0; trial < 30; ++trial) {
      EXPECT_TRUE(seen.insert(derive_seed(99, m, trial)).second);
    }
  }
}

TEST(Patterns, BroadcastListsEveryoneElse) {
  const Topology topo(5);
  const auto dests = broadcast_destinations(topo, 17);
  EXPECT_EQ(dests.size(), 31u);
  EXPECT_EQ(std::count(dests.begin(), dests.end(), 17u), 0);
}

TEST(Patterns, SubcubeDestinationsStayInOneSubcube) {
  const Topology topo(6);
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    const auto dests = subcube_destinations(topo, 0, 3, 6, rng);
    EXPECT_EQ(dests.size(), 6u);
    // All in a common 3-dimensional subcube.
    std::uint32_t common_prefix = topo.key(dests[0]) >> 3;
    for (const NodeId d : dests) {
      EXPECT_EQ(topo.key(d) >> 3, common_prefix);
      EXPECT_NE(d, 0u);
    }
  }
}

TEST(Patterns, ClusteredDestinationsAreValid) {
  const Topology topo(8);
  Rng rng(13);
  const auto dests = clustered_destinations(topo, 3, 4, 2, 40, rng);
  EXPECT_EQ(dests.size(), 40u);
  std::set<NodeId> unique(dests.begin(), dests.end());
  EXPECT_EQ(unique.size(), 40u);
  EXPECT_FALSE(unique.contains(3u));
}

TEST(Patterns, SphereHasBinomialSize) {
  const Topology topo(6);
  EXPECT_EQ(sphere_destinations(topo, 0, 1).size(), 6u);
  EXPECT_EQ(sphere_destinations(topo, 0, 2).size(), 15u);
  EXPECT_EQ(sphere_destinations(topo, 0, 6).size(), 1u);
  for (const NodeId d : sphere_destinations(topo, 21, 3)) {
    EXPECT_EQ(hcube::hamming(d, 21), 3);
  }
}

}  // namespace
}  // namespace hypercast::workload
