// Direct unit tests for the shared wormhole transport (WormEngine),
// independent of any schedule or CPU model.

#include "sim/worm_engine.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

namespace hypercast::sim {
namespace {

using hcube::Topology;

/// Bridges the engine-wide delivery handler back to a per-test
/// std::function, so tests keep their lambda ergonomics.
struct DeliverySink {
  std::function<void(MessageId, SimTime)> fn = [](MessageId, SimTime) {};

  static void thunk(void* ctx, MessageId id, SimTime at) {
    static_cast<DeliverySink*>(ctx)->fn(id, at);
  }
  void attach(WormEngine& engine) {
    engine.set_delivery_handler(&DeliverySink::thunk, this);
  }
};

struct Fixture {
  Topology topo{4};
  CostModel cost = CostModel::ncube2();
  EventQueue queue;
  WormEngine engine{topo,  cost, core::PortModel::all_port(),
                    queue, nullptr, /*record_trace=*/true};
  DeliverySink sink;

  Fixture() { sink.attach(engine); }
};

TEST(WormEngine, DeliversAtHeaderWalkPlusBody) {
  Fixture f;
  SimTime delivered = -1;
  f.sink.fn = [&](MessageId, SimTime t) { delivered = t; };
  f.engine.inject(0, 0b0111, 1024, 1000);
  f.queue.run_to_completion();
  EXPECT_EQ(delivered, 1000 + 3 * f.cost.per_hop + f.cost.body_time(1024));
  EXPECT_TRUE(f.engine.quiescent());
  EXPECT_EQ(f.engine.blocked_acquisitions(), 0u);
}

TEST(WormEngine, TraceFieldsFilledByEngine) {
  Fixture f;
  const MessageId id = f.engine.inject(0, 0b0011, 512, 500);
  f.queue.run_to_completion();
  ASSERT_TRUE(f.engine.recording_traces());
  const MessageTrace& t = f.engine.trace(id);
  EXPECT_EQ(t.from, 0u);
  EXPECT_EQ(t.to, 0b0011u);
  EXPECT_EQ(t.hops, 2);
  EXPECT_EQ(t.header_start, 500);
  EXPECT_EQ(t.path_acquired, 500 + 2 * f.cost.per_hop);
  EXPECT_EQ(t.tail, t.path_acquired + f.cost.body_time(512));
  EXPECT_EQ(f.engine.destination(id), 0b0011u);
}

TEST(WormEngine, SharedArcSerializesInInjectionOrder) {
  Fixture f;
  std::vector<MessageId> order;
  f.sink.fn = [&](MessageId id, SimTime) { order.push_back(id); };
  // Both need arc (0000, 3).
  const MessageId m1 = f.engine.inject(0, 0b1000, 4096, 100);
  const MessageId m2 = f.engine.inject(0, 0b1001, 4096, 100);
  f.queue.run_to_completion();
  EXPECT_EQ(order, (std::vector<MessageId>{m1, m2}));
  EXPECT_EQ(f.engine.blocked_acquisitions(), 1u);
  EXPECT_GT(f.engine.total_blocked_ns(), 0);
  EXPECT_TRUE(f.engine.quiescent());
}

TEST(WormEngine, DisjointWormsOverlapFully) {
  Fixture f;
  std::vector<SimTime> at(2, 0);
  f.sink.fn = [&](MessageId id, SimTime t) { at[id] = t; };
  f.engine.inject(0, 1, 4096, 0);
  f.engine.inject(4, 5, 4096, 0);
  f.queue.run_to_completion();
  EXPECT_EQ(at[0], at[1]);
  EXPECT_EQ(f.engine.blocked_acquisitions(), 0u);
}

TEST(WormEngine, OnePortPoolSerializesInjection) {
  Topology topo(4);
  EventQueue queue;
  WormEngine engine(topo, CostModel::ncube2(), core::PortModel::one_port(),
                    queue);
  DeliverySink sink;
  sink.attach(engine);
  std::vector<SimTime> at(2, 0);
  sink.fn = [&](MessageId id, SimTime t) { at[id] = t; };
  engine.inject(0, 1, 4096, 0);
  engine.inject(0, 2, 4096, 0);
  queue.run_to_completion();
  EXPECT_GT(at[1], at[0]);
  EXPECT_GE(at[1] - at[0], CostModel::ncube2().body_time(4096));
}

TEST(WormEngine, BlockedTimesCountedPerWorm) {
  Fixture f;
  const MessageId a = f.engine.inject(0, 0b1000, 4096, 0);
  const MessageId b = f.engine.inject(0, 0b1100, 4096, 0);
  f.queue.run_to_completion();
  EXPECT_EQ(f.engine.blocked_times(a), 0u);
  EXPECT_EQ(f.engine.blocked_times(b), 1u);
  EXPECT_EQ(f.engine.blocked_ns(b), f.engine.total_blocked_ns());
  // Recorded traces mirror the SoA accounting.
  EXPECT_EQ(f.engine.trace(a).blocked_times, 0);
  EXPECT_EQ(f.engine.trace(b).blocked_times, 1);
  EXPECT_EQ(f.engine.trace(b).blocked_ns, f.engine.total_blocked_ns());
}

TEST(WormEngine, ManyWormsThroughOneChannelKeepFifoOrder) {
  Fixture f;
  std::vector<MessageId> order;
  f.sink.fn = [&](MessageId id, SimTime) { order.push_back(id); };
  for (int i = 0; i < 6; ++i) {
    // All 6 worms need arc (0000, 3); they are injected at staggered
    // times but queue FIFO.
    f.engine.inject(0, 0b1000 + (i % 2 ? 1u : 0u), 2048,
                    100 * (6 - i));  // later worms injected earlier
  }
  f.queue.run_to_completion();
  // Injection times decide the order of first acquisition: worm 5 was
  // injected at t=100, worm 0 at t=600.
  EXPECT_EQ(order, (std::vector<MessageId>{5, 4, 3, 2, 1, 0}));
  EXPECT_TRUE(f.engine.quiescent());
}

TEST(WormEngine, NoTraceRecordingByDefault) {
  Topology topo(4);
  EventQueue queue;
  WormEngine engine(topo, CostModel::ncube2(), core::PortModel::all_port(),
                    queue);
  DeliverySink sink;
  sink.attach(engine);
  const MessageId id = engine.inject(0, 0b0101, 4096, 0);
  queue.run_to_completion();
  EXPECT_FALSE(engine.recording_traces());
  // Aggregate per-worm accounting stays available without traces.
  EXPECT_EQ(engine.destination(id), 0b0101u);
  EXPECT_EQ(engine.blocked_times(id), 0u);
  EXPECT_EQ(engine.blocked_ns(id), 0);
  EXPECT_TRUE(engine.quiescent());
}

TEST(WormEngine, ResetKeepsCapacityAndRestoresInvariants) {
  Fixture f;
  std::vector<SimTime> first;
  f.sink.fn = [&](MessageId, SimTime t) { first.push_back(t); };
  f.engine.inject(0, 0b1000, 4096, 0);
  f.engine.inject(0, 0b1100, 4096, 0);
  f.queue.run_to_completion();
  ASSERT_EQ(first.size(), 2u);
  ASSERT_TRUE(f.engine.quiescent());

  f.engine.reset();
  EXPECT_EQ(f.engine.num_messages(), 0u);
  EXPECT_EQ(f.engine.blocked_acquisitions(), 0u);
  EXPECT_EQ(f.engine.total_blocked_ns(), 0);
  EXPECT_TRUE(f.engine.quiescent());

  // Replaying the same workload after reset reproduces the same
  // *relative* timeline (the event queue's clock keeps advancing).
  const SimTime base = f.queue.now();
  std::vector<SimTime> second;
  f.sink.fn = [&](MessageId, SimTime t) { second.push_back(t - base); };
  f.engine.inject(0, 0b1000, 4096, base + 0);
  f.engine.inject(0, 0b1100, 4096, base + 0);
  f.queue.run_to_completion();
  EXPECT_EQ(second, first);
}

TEST(WormEngine, MemoryBytesGrowsWithWorms) {
  Fixture f;
  const std::size_t before = f.engine.memory_bytes();
  for (int i = 1; i < 16; ++i) {
    f.engine.inject(0, static_cast<hcube::NodeId>(i), 64, 0);
  }
  f.queue.run_to_completion();
  EXPECT_GT(f.engine.memory_bytes(), before);
}

}  // namespace
}  // namespace hypercast::sim
