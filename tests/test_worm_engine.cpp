// Direct unit tests for the shared wormhole transport (WormEngine),
// independent of any schedule or CPU model.

#include "sim/worm_engine.hpp"

#include <gtest/gtest.h>

namespace hypercast::sim {
namespace {

using hcube::Topology;

struct Fixture {
  Topology topo{4};
  CostModel cost = CostModel::ncube2();
  EventQueue queue;
  WormEngine engine{topo, cost, core::PortModel::all_port(), queue};
};

TEST(WormEngine, DeliversAtHeaderWalkPlusBody) {
  Fixture f;
  SimTime delivered = -1;
  f.engine.inject(0, 0b0111, 1024, 1000,
                  [&](MessageId, SimTime t) { delivered = t; });
  f.queue.run_to_completion();
  EXPECT_EQ(delivered, 1000 + 3 * f.cost.per_hop + f.cost.body_time(1024));
  EXPECT_TRUE(f.engine.quiescent());
  EXPECT_EQ(f.engine.blocked_acquisitions(), 0u);
}

TEST(WormEngine, TraceFieldsFilledByEngine) {
  Fixture f;
  const MessageId id =
      f.engine.inject(0, 0b0011, 512, 500, [](MessageId, SimTime) {});
  f.queue.run_to_completion();
  const MessageTrace& t = f.engine.trace(id);
  EXPECT_EQ(t.from, 0u);
  EXPECT_EQ(t.to, 0b0011u);
  EXPECT_EQ(t.hops, 2);
  EXPECT_EQ(t.header_start, 500);
  EXPECT_EQ(t.path_acquired, 500 + 2 * f.cost.per_hop);
  EXPECT_EQ(t.tail, t.path_acquired + f.cost.body_time(512));
}

TEST(WormEngine, SharedArcSerializesInInjectionOrder) {
  Fixture f;
  std::vector<int> order;
  // Both need arc (0000, 3).
  f.engine.inject(0, 0b1000, 4096, 100,
                  [&](MessageId, SimTime) { order.push_back(1); });
  f.engine.inject(0, 0b1001, 4096, 100,
                  [&](MessageId, SimTime) { order.push_back(2); });
  f.queue.run_to_completion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(f.engine.blocked_acquisitions(), 1u);
  EXPECT_GT(f.engine.total_blocked_ns(), 0);
  EXPECT_TRUE(f.engine.quiescent());
}

TEST(WormEngine, DisjointWormsOverlapFully) {
  Fixture f;
  SimTime t1 = 0;
  SimTime t2 = 0;
  f.engine.inject(0, 1, 4096, 0, [&](MessageId, SimTime t) { t1 = t; });
  f.engine.inject(4, 5, 4096, 0, [&](MessageId, SimTime t) { t2 = t; });
  f.queue.run_to_completion();
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(f.engine.blocked_acquisitions(), 0u);
}

TEST(WormEngine, OnePortPoolSerializesInjection) {
  Topology topo(4);
  EventQueue queue;
  WormEngine engine(topo, CostModel::ncube2(), core::PortModel::one_port(),
                    queue);
  SimTime t1 = 0;
  SimTime t2 = 0;
  engine.inject(0, 1, 4096, 0, [&](MessageId, SimTime t) { t1 = t; });
  engine.inject(0, 2, 4096, 0, [&](MessageId, SimTime t) { t2 = t; });
  queue.run_to_completion();
  EXPECT_GT(t2, t1);
  EXPECT_GE(t2 - t1, CostModel::ncube2().body_time(4096));
}

TEST(WormEngine, BlockedTimesCountedPerWorm) {
  Fixture f;
  const MessageId a = f.engine.inject(0, 0b1000, 4096, 0,
                                      [](MessageId, SimTime) {});
  const MessageId b = f.engine.inject(0, 0b1100, 4096, 0,
                                      [](MessageId, SimTime) {});
  f.queue.run_to_completion();
  EXPECT_EQ(f.engine.trace(a).blocked_times, 0);
  EXPECT_EQ(f.engine.trace(b).blocked_times, 1);
  EXPECT_EQ(f.engine.trace(b).blocked_ns, f.engine.total_blocked_ns());
}

TEST(WormEngine, ManyWormsThroughOneChannelKeepFifoOrder) {
  Fixture f;
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    // All 6 worms need arc (0000, 3); they are injected at staggered
    // times but queue FIFO.
    f.engine.inject(0, 0b1000 + (i % 2 ? 1u : 0u), 2048,
                    100 * (6 - i),  // later worms injected earlier
                    [&order, i](MessageId, SimTime) { order.push_back(i); });
  }
  f.queue.run_to_completion();
  // Injection times decide the order of first acquisition: worm 5 was
  // injected at t=100, worm 0 at t=600.
  EXPECT_EQ(order, (std::vector<int>{5, 4, 3, 2, 1, 0}));
  EXPECT_TRUE(f.engine.quiescent());
}

}  // namespace
}  // namespace hypercast::sim
