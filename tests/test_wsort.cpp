#include "core/wsort.hpp"

#include <gtest/gtest.h>

#include "core/contention.hpp"
#include "hcube/ecube.hpp"
#include "test_util.hpp"

namespace hypercast::core {
namespace {

using namespace testutil;

class WsortProperty
    : public ::testing::TestWithParam<std::tuple<hcube::Dim, Resolution>> {
 protected:
  Topology topo() const {
    return Topology(std::get<0>(GetParam()), std::get<1>(GetParam()));
  }
};

TEST_P(WsortProperty, CoversExactlyTheDestinations) {
  const Topology topo = this->topo();
  workload::Rng rng(501);
  for (int trial = 0; trial < 40; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    EXPECT_TRUE(covers_exactly(wsort(req), req));
  }
}

/// Theorem 6: W-sort multicasts are contention-free.
TEST_P(WsortProperty, TheoremSixContentionFree) {
  const Topology topo = this->topo();
  workload::Rng rng(503);
  for (int trial = 0; trial < 15; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 25);
    const auto req = random_request(topo, m, rng);
    const auto s = wsort(req);
    const auto report = check_contention(s, PortModel::all_port());
    EXPECT_TRUE(report.contention_free())
        << report.summary(topo) << "\n" << s.format_tree();
  }
}

TEST_P(WsortProperty, DistinctChannelsPerSender) {
  // W-sort feeds Maxport, so every sender still uses each outgoing
  // channel at most once.
  const Topology topo = this->topo();
  workload::Rng rng(509);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 40);
    const auto req = random_request(topo, m, rng);
    const auto s = wsort(req);
    for (const NodeId sender : s.senders()) {
      std::set<hcube::Dim> channels;
      for (const Send& send : s.sends_from(sender)) {
        EXPECT_TRUE(
            channels.insert(hcube::delta_distinct(topo, sender, send.to))
                .second);
      }
    }
  }
}

TEST_P(WsortProperty, NeverWorseThanMaxportOnAverageSteps) {
  // The weighted permutation only reorders which subcube gets the
  // message first; across random sets its average step count must not
  // exceed plain Maxport's. (Individual instances may tie.)
  const Topology topo = this->topo();
  if (topo.dim() < 4) GTEST_SKIP();
  workload::Rng rng(521);
  double wsort_total = 0;
  double maxport_total = 0;
  const int trials = 60;
  for (int trial = 0; trial < trials; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 50);
    const auto req = random_request(topo, m, rng);
    wsort_total += assign_steps(wsort(req), PortModel::all_port(),
                                req.destinations)
                       .total_steps;
    maxport_total += assign_steps(maxport(req), PortModel::all_port(),
                                  req.destinations)
                         .total_steps;
  }
  EXPECT_LE(wsort_total, maxport_total + 1e-9);
}

TEST_P(WsortProperty, FaithfulAndFastImplsGiveTheSameSchedule) {
  const Topology topo = this->topo();
  workload::Rng rng(523);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t m =
        1 + rng() % std::min<std::size_t>(topo.num_nodes() - 1, 30);
    const auto req = random_request(topo, m, rng);
    const auto a = wsort(req, WeightedSortImpl::Faithful);
    const auto b = wsort(req, WeightedSortImpl::Fast);
    EXPECT_EQ(a.format_tree(), b.format_tree());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cubes, WsortProperty,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 6, 8),
                       ::testing::Values(Resolution::HighToLow,
                                         Resolution::LowToHigh)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == Resolution::HighToLow ? "_HighToLow"
                                                               : "_LowToHigh");
    });

TEST(Wsort, CrowdedSubcubeGetsTheMessageFirst) {
  // Destinations: one lonely node in subcube 10xx (11) and three in
  // 11xx. W-sort must route to the crowded subcube 11xx first so its
  // members fan out earlier.
  const Topology topo(4);
  const MulticastRequest req{topo, 0, {11, 12, 14, 15}};
  const auto s = wsort(req);
  const auto first_send = s.sends_from(0);
  ASSERT_FALSE(first_send.empty());
  EXPECT_EQ(first_send[0].to, 14u);  // head of the crowded half
  const auto steps =
      assign_steps(s, PortModel::all_port(), req.destinations);
  EXPECT_EQ(steps.total_steps, 2);
  // Plain Maxport needs 4 (the 11 -> 12 -> 14 -> 15 chain of Fig. 8(b)).
  const auto mp_steps = assign_steps(maxport(req), PortModel::all_port(),
                                     req.destinations);
  EXPECT_EQ(mp_steps.total_steps, 4);
}

TEST(Wsort, BroadcastStillNSteps) {
  const Topology topo(5);
  std::vector<NodeId> dests;
  for (NodeId u = 1; u < 32; ++u) dests.push_back(u);
  const MulticastRequest req{topo, 0, dests};
  const auto steps = assign_steps(wsort(req), PortModel::all_port(),
                                  req.destinations);
  EXPECT_EQ(steps.total_steps, 5);
}

TEST(Wsort, SingleDestination) {
  const Topology topo(4);
  const MulticastRequest req{topo, 9, {2}};
  EXPECT_EQ(wsort(req).num_unicasts(), 1u);
}

}  // namespace
}  // namespace hypercast::core
