#!/usr/bin/env python3
"""Bench regression gate for hypercast-bench-v1 artifacts.

Compares throughput metrics (any metric key containing "per_sec" or
"per_s" -- builds_per_sec, events_per_s, sorts_per_sec, ...) in freshly
produced BENCH_*.json files against the committed baselines under
results/. Higher is better for every rate metric; the gate fails when a
fresh rate drops more than --threshold (default 30%) below its baseline.

Benchmarks or individual metrics present on only one side are reported
but never fail the gate: baselines are refreshed deliberately, and quick
CI runs may skip heavyweight benchmarks.

Usage:
  tools/check_bench_regression.py --fresh-dir bench-artifacts \
      [--baseline-dir results] [--threshold 0.30] [--only SUBSTR]

--only restricts the comparison to benchmark names containing SUBSTR
(applied to both sides; used by CI to gate cached-mode "_cached"
artifacts against their own baselines only). A SUBSTR that matches no
fresh artifact or no committed baseline is an error (exit 2), not a
silent pass -- a renamed benchmark must not leave a green gate
comparing nothing. The threshold can also be set via the
BENCH_REGRESSION_THRESHOLD environment variable (the flag wins). Exit
status: 0 pass, 1 regression, 2 usage/IO/malformed-artifact error.
"""

import argparse
import json
import os
import sys
from pathlib import Path

RATE_MARKERS = ("per_sec", "per_s")


def is_rate_metric(key: str) -> bool:
    return any(marker in key for marker in RATE_MARKERS)


def load_artifacts(directory: Path):
    """Map benchmark name -> {metric: value} for rate metrics only."""
    out = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as err:
            print(f"error: cannot parse {path}: {err}", file=sys.stderr)
            sys.exit(2)
        if not isinstance(doc, dict):
            print(f"error: {path} is not a JSON object "
                  f"(got {type(doc).__name__})", file=sys.stderr)
            sys.exit(2)
        if doc.get("schema") != "hypercast-bench-v1":
            print(f"note: skipping {path.name} (schema {doc.get('schema')!r})")
            continue
        metrics = doc.get("metrics", {})
        if not isinstance(metrics, dict):
            print(f"error: {path}: \"metrics\" is not an object "
                  f"(got {type(metrics).__name__})", file=sys.stderr)
            sys.exit(2)
        rates = {
            key: value
            for key, value in metrics.items()
            if is_rate_metric(key) and isinstance(value, (int, float))
        }
        out[doc.get("name", path.stem)] = rates
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh-dir", required=True, type=Path,
                        help="directory with just-produced BENCH_*.json")
    parser.add_argument("--baseline-dir", type=Path, default=Path("results"),
                        help="directory with committed baselines "
                             "(default: results)")
    parser.add_argument("--threshold", type=float,
                        default=float(os.environ.get(
                            "BENCH_REGRESSION_THRESHOLD", "0.30")),
                        help="max tolerated fractional drop, e.g. 0.30 "
                             "(default: 0.30 or $BENCH_REGRESSION_THRESHOLD)")
    parser.add_argument("--only", default="",
                        help="restrict to benchmark names containing this "
                             "substring (applied to fresh and baseline)")
    args = parser.parse_args()

    if not (0.0 < args.threshold < 1.0):
        print(f"error: threshold {args.threshold} not in (0, 1)",
              file=sys.stderr)
        return 2
    for directory in (args.fresh_dir, args.baseline_dir):
        if not directory.is_dir():
            print(f"error: {directory} is not a directory", file=sys.stderr)
            return 2

    fresh = load_artifacts(args.fresh_dir)
    baseline = load_artifacts(args.baseline_dir)
    if args.only:
        fresh = {k: v for k, v in fresh.items() if args.only in k}
        baseline = {k: v for k, v in baseline.items() if args.only in k}
    if not fresh:
        what = (f"artifacts matching {args.only!r}" if args.only
                else "BENCH_*.json artifacts")
        print(f"error: no {what} in {args.fresh_dir}", file=sys.stderr)
        return 2
    if args.only and not baseline:
        print(f"error: no baselines matching {args.only!r} in "
              f"{args.baseline_dir} -- an --only gate that compares "
              f"nothing would pass vacuously", file=sys.stderr)
        return 2

    for name in sorted(baseline.keys() - fresh.keys()):
        print(f"note: {name}: baseline present but missing from fresh run")

    regressions = []
    compared = 0
    for name, fresh_rates in sorted(fresh.items()):
        base_rates = baseline.get(name)
        if base_rates is None:
            print(f"note: {name}: no committed baseline, skipping")
            continue
        for key, fresh_value in sorted(fresh_rates.items()):
            base_value = base_rates.get(key)
            if base_value is None:
                print(f"note: {name}: metric {key!r} not in baseline")
                continue
            if base_value <= 0:
                continue
            compared += 1
            ratio = fresh_value / base_value
            status = "ok"
            if ratio < 1.0 - args.threshold:
                status = "REGRESSION"
                regressions.append((name, key, base_value, fresh_value, ratio))
            print(f"{status:>10}  {name}: {key}  "
                  f"{base_value:.4g} -> {fresh_value:.4g}  ({ratio:.2f}x)")

    print(f"\ncompared {compared} rate metrics, "
          f"threshold {args.threshold:.0%} drop")
    if regressions:
        print(f"FAIL: {len(regressions)} metric(s) regressed:")
        for name, key, base_value, fresh_value, ratio in regressions:
            print(f"  {name}: {key}  {base_value:.4g} -> {fresh_value:.4g}  "
                  f"({(1 - ratio):.0%} drop)")
        return 1
    print("PASS: no rate metric regressed beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
