#!/usr/bin/env python3
"""Schema validator for hypercast observability artifacts.

Validates two artifact families produced by the obs subsystem:

 * Stats expositions ("hypercast-stats-v1"): the object printed by
   `hypercast_cli --stats=json` / the `stats` command, and the "stats"
   block embedded in hypercast-bench-v1 artifacts by `bench_runner
   --stats`. Structural checks plus invariants the instruments
   guarantee: counters are non-negative integers, every histogram's
   bucket counts sum to its count, percentiles are ordered
   (min <= p50 <= p95 <= p99 <= max), empty histograms report zeroes,
   and gauge fields are numbers.

 * Chrome trace-event JSON: the bare event array written by
   --trace-out (obs::Tracer spans, sim::Trace worm phases, or both
   merged). Every event needs "name" and "ph"; complete ("X") events
   need numeric ts/dur and an integer tid; metadata ("M") events are
   exempt from timestamps. The result must load in chrome://tracing.

 * Prometheus text exposition (format 0.0.4): the output of
   `obs::Registry::to_prometheus()`, served by hypercast_served at
   GET /metrics and printed by `hypercast_cli --stats=prom`. Checks
   metric-name charset, a `# TYPE` line for every sample family,
   `_total`-suffixed counters, and histogram invariants: cumulative
   non-decreasing `le` buckets ending in `+Inf`, with the `+Inf`
   bucket equal to the family's `_count` sample.

Usage:
  tools/check_stats_schema.py [--stats FILE ...] [--trace FILE ...] \
      [--prom FILE ...] [--bench-dir DIR]

--bench-dir scans DIR for BENCH_*.json and validates the embedded
"stats" block of any artifact that has one. At least one input must be
given. Exit status: 0 pass, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import math
import re
import sys
from pathlib import Path

STATS_SCHEMA = "hypercast-stats-v1"
HIST_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99",
               "buckets")


class Check:
    """Accumulates per-file validation errors."""

    def __init__(self):
        self.errors = []
        self.checked = 0

    def error(self, where: str, message: str):
        self.errors.append(f"{where}: {message}")


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def load_json(path: Path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot parse {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check_histogram(chk: Check, where: str, hist):
    if not isinstance(hist, dict):
        chk.error(where, f"histogram is not an object "
                         f"(got {type(hist).__name__})")
        return
    for field in HIST_FIELDS:
        if field not in hist:
            chk.error(where, f"missing histogram field {field!r}")
    for field in ("count", "sum"):
        if field in hist and not is_uint(hist[field]):
            chk.error(where, f"{field} is not a non-negative integer")
    for field in ("mean", "min", "max", "p50", "p95", "p99"):
        if field in hist and not is_number(hist[field]):
            chk.error(where, f"{field} is not a number")
    if chk.errors:
        pass  # structural problems; value invariants below may not apply

    buckets = hist.get("buckets")
    if not isinstance(buckets, list):
        chk.error(where, "buckets is not an array")
        return
    total = 0
    prev_le = -1
    for i, bucket in enumerate(buckets):
        bwhere = f"{where}.buckets[{i}]"
        if not isinstance(bucket, dict) or not is_uint(bucket.get("le")) \
                or not is_uint(bucket.get("count")):
            chk.error(bwhere, "expected {\"le\": uint, \"count\": uint}")
            continue
        if bucket["le"] <= prev_le:
            chk.error(bwhere, f"bucket bounds not increasing "
                              f"({bucket['le']} after {prev_le})")
        prev_le = bucket["le"]
        total += bucket["count"]

    count = hist.get("count")
    if is_uint(count):
        if total != count:
            chk.error(where, f"bucket counts sum to {total}, count is {count}")
        if count == 0:
            for field in ("sum", "mean", "min", "max", "p50", "p95", "p99"):
                if is_number(hist.get(field)) and hist[field] != 0:
                    chk.error(where, f"empty histogram has nonzero {field}")
        else:
            quantiles = [hist.get(f) for f in ("min", "p50", "p95", "p99",
                                               "max")]
            if all(is_number(q) for q in quantiles):
                for (lo_name, lo), (hi_name, hi) in zip(
                        zip(("min", "p50", "p95", "p99"), quantiles),
                        zip(("p50", "p95", "p99", "max"), quantiles[1:])):
                    if lo > hi:
                        chk.error(where, f"percentiles out of order: "
                                         f"{lo_name}={lo} > {hi_name}={hi}")


def check_stats_object(chk: Check, where: str, doc):
    chk.checked += 1
    if not isinstance(doc, dict):
        chk.error(where, f"not a JSON object (got {type(doc).__name__})")
        return
    if doc.get("schema") != STATS_SCHEMA:
        chk.error(where, f"schema is {doc.get('schema')!r}, "
                         f"expected {STATS_SCHEMA!r}")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        chk.error(where, "counters is not an object")
    else:
        for name, value in counters.items():
            if not is_uint(value):
                chk.error(f"{where}.counters.{name}",
                          "not a non-negative integer")

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        chk.error(where, "histograms is not an object")
    else:
        for name, hist in histograms.items():
            check_histogram(chk, f"{where}.histograms.{name}", hist)

    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        chk.error(where, "gauges is not an object")
    else:
        for source, fields in gauges.items():
            if not isinstance(fields, dict):
                chk.error(f"{where}.gauges.{source}", "not an object")
                continue
            for field, value in fields.items():
                if not is_number(value):
                    chk.error(f"{where}.gauges.{source}.{field}",
                              "not a number")

    for field in ("trace_spans", "trace_dropped"):
        if not is_uint(doc.get(field)):
            chk.error(where, f"{field} missing or not a non-negative integer")


def check_trace_document(chk: Check, where: str, doc):
    chk.checked += 1
    if not isinstance(doc, list):
        chk.error(where, f"trace document is not an array "
                         f"(got {type(doc).__name__})")
        return
    if not doc:
        chk.error(where, "trace document is empty (no events)")
    for i, event in enumerate(doc):
        ewhere = f"{where}[{i}]"
        if not isinstance(event, dict):
            chk.error(ewhere, "event is not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            chk.error(ewhere, "missing or empty \"name\"")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            chk.error(ewhere, "missing or empty \"ph\"")
            continue
        if ph == "M":
            continue  # metadata events carry no timeline fields
        ts = event.get("ts")
        if not is_number(ts) or ts < 0:
            chk.error(ewhere, "non-metadata event needs numeric ts >= 0")
        if ph == "X":
            if not is_number(event.get("dur")) or event["dur"] < 0:
                chk.error(ewhere, "complete event needs numeric dur >= 0")
            if not is_uint(event.get("tid")):
                chk.error(ewhere,
                          "complete event needs a non-negative integer tid")


PROM_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
PROM_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")
# A sample line: name, optional {labels}, value, optional timestamp.
PROM_SAMPLE_RE = re.compile(
    r"^(?P<name>[^\s{]+)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$")


def prom_family(sample_name: str, types: dict) -> str:
    """Maps a sample name to its metric family.

    Histogram samples are exposed as <family>_bucket/_sum/_count; other
    samples expose the family name directly.
    """
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def parse_prom_value(text: str):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    try:
        return float(text)
    except ValueError:
        return None


def check_prometheus_text(chk: Check, where: str, text: str):
    chk.checked += 1
    types = {}       # family -> declared type
    samples = []     # (line_no, family, sample_name, labels, value)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        lwhere = f"{where}:{line_no}"
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) != 4:
                    chk.error(lwhere, "malformed # TYPE line")
                    continue
                _, _, name, kind = parts
                if not PROM_NAME_RE.match(name):
                    chk.error(lwhere, f"bad metric name {name!r} in # TYPE")
                if kind not in PROM_TYPES:
                    chk.error(lwhere, f"unknown metric type {kind!r}")
                if name in types:
                    chk.error(lwhere, f"duplicate # TYPE for {name}")
                types[name] = kind
            # "# HELP" and plain comments need no validation.
            continue
        match = PROM_SAMPLE_RE.match(line)
        if not match:
            chk.error(lwhere, f"unparseable sample line {line!r}")
            continue
        name = match.group("name")
        if not PROM_NAME_RE.match(name):
            chk.error(lwhere, f"bad metric name {name!r}")
            continue
        value = parse_prom_value(match.group("value"))
        if value is None:
            chk.error(lwhere, f"bad sample value {match.group('value')!r}")
            continue
        labels = {}
        label_text = match.group("labels")
        if label_text:
            for pair in label_text.split(","):
                if "=" not in pair:
                    chk.error(lwhere, f"malformed label {pair!r}")
                    continue
                key, _, val = pair.partition("=")
                if not (len(val) >= 2 and val[0] == '"' and val[-1] == '"'):
                    chk.error(lwhere, f"label value not quoted in {pair!r}")
                    continue
                labels[key.strip()] = val[1:-1]
        samples.append((line_no, prom_family(name, types), name, labels,
                        value))

    families = {}  # family -> list of samples
    for sample in samples:
        families.setdefault(sample[1], []).append(sample)

    for family, rows in sorted(families.items()):
        fwhere = f"{where}:{family}"
        kind = types.get(family)
        if kind is None:
            chk.error(fwhere, "sample has no preceding # TYPE line")
            continue
        if kind == "counter":
            if not family.endswith("_total"):
                chk.error(fwhere, "counter name does not end in _total")
            for line_no, _, _, _, value in rows:
                if value < 0 or math.isnan(value):
                    chk.error(f"{where}:{line_no}",
                              f"counter value {value} is negative or NaN")
        elif kind == "histogram":
            buckets = []
            sum_value = None
            count_value = None
            for line_no, _, name, labels, value in rows:
                if name.endswith("_bucket"):
                    if "le" not in labels:
                        chk.error(f"{where}:{line_no}",
                                  "histogram bucket without le label")
                        continue
                    bound = parse_prom_value(labels["le"])
                    if bound is None or math.isnan(bound):
                        chk.error(f"{where}:{line_no}",
                                  f"bad le bound {labels['le']!r}")
                        continue
                    buckets.append((line_no, bound, value))
                elif name.endswith("_sum"):
                    sum_value = value
                elif name.endswith("_count"):
                    count_value = value
            if not buckets:
                chk.error(fwhere, "histogram exposes no _bucket samples")
                continue
            prev_bound, prev_count = -math.inf, -math.inf
            for line_no, bound, value in buckets:
                bwhere = f"{where}:{line_no}"
                if bound <= prev_bound:
                    chk.error(bwhere, f"le bounds not increasing "
                                      f"({bound} after {prev_bound})")
                if value < prev_count:
                    chk.error(bwhere, f"bucket counts not cumulative "
                                      f"({value} after {prev_count})")
                prev_bound, prev_count = bound, value
            if buckets[-1][1] != math.inf:
                chk.error(fwhere, "last bucket is not le=\"+Inf\"")
            if count_value is None:
                chk.error(fwhere, "histogram missing _count sample")
            elif buckets[-1][1] == math.inf \
                    and buckets[-1][2] != count_value:
                chk.error(fwhere, f"+Inf bucket {buckets[-1][2]} != "
                                  f"_count {count_value}")
            if sum_value is None:
                chk.error(fwhere, "histogram missing _sum sample")

    declared_only = sorted(set(types) - set(families))
    for family in declared_only:
        chk.error(f"{where}:{family}", "# TYPE declared but no samples")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stats", nargs="+", type=Path, default=[],
                        metavar="FILE",
                        help="hypercast-stats-v1 JSON files to validate")
    parser.add_argument("--trace", nargs="+", type=Path, default=[],
                        metavar="FILE",
                        help="Chrome trace-event JSON files to validate")
    parser.add_argument("--prom", nargs="+", type=Path, default=[],
                        metavar="FILE",
                        help="Prometheus text expositions to validate "
                             "(e.g. a saved GET /metrics response)")
    parser.add_argument("--bench-dir", type=Path, default=None, metavar="DIR",
                        help="validate embedded \"stats\" blocks in "
                             "BENCH_*.json under DIR")
    args = parser.parse_args()

    if not args.stats and not args.trace and not args.prom \
            and args.bench_dir is None:
        parser.print_usage(sys.stderr)
        print("error: nothing to validate (give --stats, --trace, --prom, "
              "or --bench-dir)", file=sys.stderr)
        return 2

    chk = Check()
    for path in args.stats:
        check_stats_object(chk, str(path), load_json(path))
    for path in args.trace:
        check_trace_document(chk, str(path), load_json(path))
    for path in args.prom:
        try:
            text = path.read_text()
        except OSError as err:
            print(f"error: cannot read {path}: {err}", file=sys.stderr)
            return 2
        check_prometheus_text(chk, str(path), text)
    if args.bench_dir is not None:
        if not args.bench_dir.is_dir():
            print(f"error: {args.bench_dir} is not a directory",
                  file=sys.stderr)
            return 2
        with_stats = 0
        for path in sorted(args.bench_dir.glob("BENCH_*.json")):
            doc = load_json(path)
            if not isinstance(doc, dict) \
                    or doc.get("schema") != "hypercast-bench-v1":
                print(f"note: skipping {path.name} (not hypercast-bench-v1)")
                continue
            if "stats" not in doc:
                continue
            with_stats += 1
            check_stats_object(chk, f"{path}:stats", doc["stats"])
        print(f"{args.bench_dir}: {with_stats} artifact(s) with embedded "
              f"stats blocks")

    if chk.errors:
        print(f"FAIL: {len(chk.errors)} schema violation(s):")
        for err in chk.errors:
            print(f"  {err}")
        return 1
    print(f"PASS: {chk.checked} document(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
