#!/usr/bin/env python3
"""Schema validator for hypercast observability artifacts.

Validates two artifact families produced by the obs subsystem:

 * Stats expositions ("hypercast-stats-v1"): the object printed by
   `hypercast_cli --stats=json` / the `stats` command, and the "stats"
   block embedded in hypercast-bench-v1 artifacts by `bench_runner
   --stats`. Structural checks plus invariants the instruments
   guarantee: counters are non-negative integers, every histogram's
   bucket counts sum to its count, percentiles are ordered
   (min <= p50 <= p95 <= p99 <= max), empty histograms report zeroes,
   and gauge fields are numbers.

 * Chrome trace-event JSON: the bare event array written by
   --trace-out (obs::Tracer spans, sim::Trace worm phases, or both
   merged). Every event needs "name" and "ph"; complete ("X") events
   need numeric ts/dur and an integer tid; metadata ("M") events are
   exempt from timestamps. The result must load in chrome://tracing.

Usage:
  tools/check_stats_schema.py [--stats FILE ...] [--trace FILE ...] \
      [--bench-dir DIR]

--bench-dir scans DIR for BENCH_*.json and validates the embedded
"stats" block of any artifact that has one. At least one input must be
given. Exit status: 0 pass, 1 validation failure, 2 usage/IO error.
"""

import argparse
import json
import sys
from pathlib import Path

STATS_SCHEMA = "hypercast-stats-v1"
HIST_FIELDS = ("count", "sum", "mean", "min", "max", "p50", "p95", "p99",
               "buckets")


class Check:
    """Accumulates per-file validation errors."""

    def __init__(self):
        self.errors = []
        self.checked = 0

    def error(self, where: str, message: str):
        self.errors.append(f"{where}: {message}")


def is_uint(v) -> bool:
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def is_number(v) -> bool:
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def load_json(path: Path):
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot parse {path}: {err}", file=sys.stderr)
        sys.exit(2)


def check_histogram(chk: Check, where: str, hist):
    if not isinstance(hist, dict):
        chk.error(where, f"histogram is not an object "
                         f"(got {type(hist).__name__})")
        return
    for field in HIST_FIELDS:
        if field not in hist:
            chk.error(where, f"missing histogram field {field!r}")
    for field in ("count", "sum"):
        if field in hist and not is_uint(hist[field]):
            chk.error(where, f"{field} is not a non-negative integer")
    for field in ("mean", "min", "max", "p50", "p95", "p99"):
        if field in hist and not is_number(hist[field]):
            chk.error(where, f"{field} is not a number")
    if chk.errors:
        pass  # structural problems; value invariants below may not apply

    buckets = hist.get("buckets")
    if not isinstance(buckets, list):
        chk.error(where, "buckets is not an array")
        return
    total = 0
    prev_le = -1
    for i, bucket in enumerate(buckets):
        bwhere = f"{where}.buckets[{i}]"
        if not isinstance(bucket, dict) or not is_uint(bucket.get("le")) \
                or not is_uint(bucket.get("count")):
            chk.error(bwhere, "expected {\"le\": uint, \"count\": uint}")
            continue
        if bucket["le"] <= prev_le:
            chk.error(bwhere, f"bucket bounds not increasing "
                              f"({bucket['le']} after {prev_le})")
        prev_le = bucket["le"]
        total += bucket["count"]

    count = hist.get("count")
    if is_uint(count):
        if total != count:
            chk.error(where, f"bucket counts sum to {total}, count is {count}")
        if count == 0:
            for field in ("sum", "mean", "min", "max", "p50", "p95", "p99"):
                if is_number(hist.get(field)) and hist[field] != 0:
                    chk.error(where, f"empty histogram has nonzero {field}")
        else:
            quantiles = [hist.get(f) for f in ("min", "p50", "p95", "p99",
                                               "max")]
            if all(is_number(q) for q in quantiles):
                for (lo_name, lo), (hi_name, hi) in zip(
                        zip(("min", "p50", "p95", "p99"), quantiles),
                        zip(("p50", "p95", "p99", "max"), quantiles[1:])):
                    if lo > hi:
                        chk.error(where, f"percentiles out of order: "
                                         f"{lo_name}={lo} > {hi_name}={hi}")


def check_stats_object(chk: Check, where: str, doc):
    chk.checked += 1
    if not isinstance(doc, dict):
        chk.error(where, f"not a JSON object (got {type(doc).__name__})")
        return
    if doc.get("schema") != STATS_SCHEMA:
        chk.error(where, f"schema is {doc.get('schema')!r}, "
                         f"expected {STATS_SCHEMA!r}")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        chk.error(where, "counters is not an object")
    else:
        for name, value in counters.items():
            if not is_uint(value):
                chk.error(f"{where}.counters.{name}",
                          "not a non-negative integer")

    histograms = doc.get("histograms")
    if not isinstance(histograms, dict):
        chk.error(where, "histograms is not an object")
    else:
        for name, hist in histograms.items():
            check_histogram(chk, f"{where}.histograms.{name}", hist)

    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        chk.error(where, "gauges is not an object")
    else:
        for source, fields in gauges.items():
            if not isinstance(fields, dict):
                chk.error(f"{where}.gauges.{source}", "not an object")
                continue
            for field, value in fields.items():
                if not is_number(value):
                    chk.error(f"{where}.gauges.{source}.{field}",
                              "not a number")

    for field in ("trace_spans", "trace_dropped"):
        if not is_uint(doc.get(field)):
            chk.error(where, f"{field} missing or not a non-negative integer")


def check_trace_document(chk: Check, where: str, doc):
    chk.checked += 1
    if not isinstance(doc, list):
        chk.error(where, f"trace document is not an array "
                         f"(got {type(doc).__name__})")
        return
    if not doc:
        chk.error(where, "trace document is empty (no events)")
    for i, event in enumerate(doc):
        ewhere = f"{where}[{i}]"
        if not isinstance(event, dict):
            chk.error(ewhere, "event is not an object")
            continue
        if not isinstance(event.get("name"), str) or not event.get("name"):
            chk.error(ewhere, "missing or empty \"name\"")
        ph = event.get("ph")
        if not isinstance(ph, str) or not ph:
            chk.error(ewhere, "missing or empty \"ph\"")
            continue
        if ph == "M":
            continue  # metadata events carry no timeline fields
        ts = event.get("ts")
        if not is_number(ts) or ts < 0:
            chk.error(ewhere, "non-metadata event needs numeric ts >= 0")
        if ph == "X":
            if not is_number(event.get("dur")) or event["dur"] < 0:
                chk.error(ewhere, "complete event needs numeric dur >= 0")
            if not is_uint(event.get("tid")):
                chk.error(ewhere,
                          "complete event needs a non-negative integer tid")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--stats", nargs="+", type=Path, default=[],
                        metavar="FILE",
                        help="hypercast-stats-v1 JSON files to validate")
    parser.add_argument("--trace", nargs="+", type=Path, default=[],
                        metavar="FILE",
                        help="Chrome trace-event JSON files to validate")
    parser.add_argument("--bench-dir", type=Path, default=None, metavar="DIR",
                        help="validate embedded \"stats\" blocks in "
                             "BENCH_*.json under DIR")
    args = parser.parse_args()

    if not args.stats and not args.trace and args.bench_dir is None:
        parser.print_usage(sys.stderr)
        print("error: nothing to validate (give --stats, --trace, or "
              "--bench-dir)", file=sys.stderr)
        return 2

    chk = Check()
    for path in args.stats:
        check_stats_object(chk, str(path), load_json(path))
    for path in args.trace:
        check_trace_document(chk, str(path), load_json(path))
    if args.bench_dir is not None:
        if not args.bench_dir.is_dir():
            print(f"error: {args.bench_dir} is not a directory",
                  file=sys.stderr)
            return 2
        with_stats = 0
        for path in sorted(args.bench_dir.glob("BENCH_*.json")):
            doc = load_json(path)
            if not isinstance(doc, dict) \
                    or doc.get("schema") != "hypercast-bench-v1":
                print(f"note: skipping {path.name} (not hypercast-bench-v1)")
                continue
            if "stats" not in doc:
                continue
            with_stats += 1
            check_stats_object(chk, f"{path}:stats", doc["stats"])
        print(f"{args.bench_dir}: {with_stats} artifact(s) with embedded "
              f"stats blocks")

    if chk.errors:
        print(f"FAIL: {len(chk.errors)} schema violation(s):")
        for err in chk.errors:
            print(f"  {err}")
        return 1
    print(f"PASS: {chk.checked} document(s) conform")
    return 0


if __name__ == "__main__":
    sys.exit(main())
