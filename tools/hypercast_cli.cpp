// hypercast_cli — plan, inspect and simulate hypercube multicasts from
// the command line.
//
//   hypercast_cli plan  --n 4 --algo wsort --source 0 --dests 1,3,5,7
//   hypercast_cli steps --n 6 --algo maxport --source 0 --m 20 --seed 7
//   hypercast_cli delay --n 10 --algo wsort --m 200 --bytes 4096 --port all
//   hypercast_cli chains --n 4 --source 0 --dests 1,3,5,7,11,12,14,15
//   hypercast_cli compare --n 6 --m 25 --seed 3
//   hypercast_cli faults --n 6 --faults 0.10 --fault-seed 42
//   hypercast_cli serve --n 8 --requests 5000 --shapes 4 --threads 4 --cache
//   hypercast_cli stripe --n 8 --bytes 1048576 --parity --faults 0.05
//   hypercast_cli stats --n 8 --requests 2048 --trace-out=trace.json
//
// Common options: --res high|low, --port one|all|k:<n>, --seed <u64>.
// Observability (all commands): --stats[=text|json] prints the obs
// registry exposition after the run; --trace-out=<file> writes Chrome
// trace-event JSON (worm timelines for delay/faults, pipeline spans for
// serve, both merged for stats).
// Fault injection (all commands): --faults <count|rate> [--fault-seed s],
// --fail-links u:d,..., --fail-nodes a,b. With faults present, trees are
// built by the requested algorithm and then repaired fault-aware; the
// simulator itself refuses to route a worm into a failed channel, so a
// clean `delay` run doubles as proof the repair worked.

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "coll/schedule_cache.hpp"
#include "coll/serve_pipeline.hpp"
#include "core/chain_search.hpp"
#include "core/contention.hpp"
#include "core/registry.hpp"
#include "fault/fault_aware.hpp"
#include "harness/options.hpp"
#include "metrics/json.hpp"
#include "obs/registry.hpp"
#include "sim/trace.hpp"
#include "sim/wormhole_sim.hpp"
#include "workload/random_sets.hpp"

namespace {

using namespace hypercast;

enum class StatsMode { Off, Text, Json, Prometheus };

StatsMode stats_mode(const harness::Options& opts) {
  if (!opts.has("stats")) return StatsMode::Off;
  if (opts.is_bare_flag("stats")) return StatsMode::Text;
  const std::string v = opts.get("stats");
  if (v == "text") return StatsMode::Text;
  if (v == "json") return StatsMode::Json;
  if (v == "prom") return StatsMode::Prometheus;
  throw std::invalid_argument("--stats expects text, json or prom, got '" +
                              v + "'");
}

void print_registry(StatsMode mode) {
  if (mode == StatsMode::Off) return;
  obs::Registry& registry = obs::default_registry();
  if (mode == StatsMode::Json) {
    std::printf("%s\n", registry.to_json().c_str());
  } else if (mode == StatsMode::Prometheus) {
    std::fputs(registry.to_prometheus().c_str(), stdout);
  } else {
    std::fputs(registry.format_text().c_str(), stdout);
  }
}

/// Print --stats output if requested. Commands call this *before* their
/// local gauge sources (e.g. the serve cache) go out of scope.
void finish_stats(const harness::Options& opts) {
  print_registry(stats_mode(opts));
}

void write_text_file(const std::string& path, const std::string& body) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body << '\n';
  if (!out) throw std::runtime_error("failed to write " + path);
  std::fprintf(stderr, "wrote %s\n", path.c_str());
}

core::MulticastRequest request_from(const harness::Options& opts) {
  const hcube::Dim n = static_cast<hcube::Dim>(opts.get_int("n"));
  const hcube::Topology topo(n, opts.resolution());
  const hcube::NodeId source =
      static_cast<hcube::NodeId>(opts.get_int_or("source", 0));
  std::vector<hcube::NodeId> dests;
  if (opts.has("dests")) {
    dests = opts.get_nodes("dests");
  } else {
    const std::size_t m = static_cast<std::size_t>(opts.get_int("m"));
    workload::Rng rng(
        static_cast<std::uint64_t>(opts.get_int_or("seed", 1)));
    dests = workload::random_destinations(topo, source, m, rng);
  }
  core::MulticastRequest req{topo, source, std::move(dests)};
  req.validate();
  return req;
}

/// Parse the fault flags; when present, also register the fault-aware
/// "-ft" variants of the paper algorithms so --algo wsort-ft etc. work.
std::shared_ptr<const fault::FaultSet> setup_faults(
    const harness::Options& opts, const hcube::Topology& topo) {
  auto fs = opts.fault_set(topo);
  if (!fs) return nullptr;
  auto shared = std::make_shared<const fault::FaultSet>(std::move(*fs));
  fault::register_fault_aware_algorithms(shared);
  return shared;
}

/// Build the schedule for `algo`, repairing it against the fault set
/// when one is configured (printing the repair summary).
core::MulticastSchedule build_schedule(const core::AlgorithmEntry& algo,
                                       const core::MulticastRequest& req,
                                       const fault::FaultSet* faults,
                                       bool print_repairs = true) {
  if (faults == nullptr) return algo.build(req);
  auto result = fault::fault_aware_multicast(algo, req, *faults);
  if (print_repairs) {
    std::printf("faults: %s\n  %s\n", faults->format().c_str(),
                result.report.summary().c_str());
  }
  return std::move(result.schedule);
}

int cmd_plan(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto faults = setup_faults(opts, req.topo);
  const auto& algo = core::find_algorithm(opts.get_or("algo", "wsort"));
  const auto schedule = build_schedule(algo, req, faults.get());
  std::printf("%s tree, %zu destinations, %zu unicasts:\n",
              algo.display.c_str(), req.destinations.size(),
              schedule.num_unicasts());
  std::fputs(schedule.format_tree().c_str(), stdout);
  const auto steps =
      core::assign_steps(schedule, opts.port(), req.destinations);
  const auto report = core::check_contention(schedule, steps);
  std::printf("steps (%s): %d | %s\n", opts.port().name(), steps.total_steps,
              report.contention_free() ? "contention-free"
                                       : report.summary(req.topo).c_str());
  finish_stats(opts);
  return 0;
}

int cmd_steps(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto faults = setup_faults(opts, req.topo);
  const auto& algo = core::find_algorithm(opts.get_or("algo", "wsort"));
  const auto steps = core::assign_steps(build_schedule(algo, req, faults.get()),
                                        opts.port(), req.destinations);
  for (const auto& u : steps.unicasts) {
    std::printf("step %2d  %s -> %s\n", u.step,
                req.topo.format(u.from).c_str(),
                req.topo.format(u.to).c_str());
  }
  std::printf("total: %d steps\n", steps.total_steps);
  finish_stats(opts);
  return 0;
}

int cmd_delay(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto faults = setup_faults(opts, req.topo);
  const auto& algo = core::find_algorithm(opts.get_or("algo", "wsort"));
  const std::string trace_out = opts.get_or("trace-out", "");
  sim::SimConfig config;
  config.port = opts.port();
  config.message_bytes =
      static_cast<std::size_t>(opts.get_int_or("bytes", 4096));
  config.faults = faults.get();
  config.record_trace = !trace_out.empty();
  const auto result =
      sim::simulate_multicast(build_schedule(algo, req, faults.get()), config);
  std::printf(
      "%s, %zu destinations, %zu-byte message (%s):\n"
      "  avg delay %10.1f us\n  max delay %10.1f us\n"
      "  blocked channel acquisitions: %llu\n",
      algo.display.c_str(), req.destinations.size(), config.message_bytes,
      opts.port().name(), result.avg_delay(req.destinations) / 1000.0,
      sim::to_microseconds(result.max_delay(req.destinations)),
      static_cast<unsigned long long>(result.stats.blocked_acquisitions));
  if (!trace_out.empty()) {
    write_text_file(trace_out, result.trace.to_chrome_json(req.topo));
  }
  finish_stats(opts);
  return 0;
}

int cmd_chains(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto best = core::best_cube_ordered_chain(req, opts.port());
  std::printf("admissible cube-ordered chains: %zu\n", best.chains_examined);
  std::printf("best steps: %d\nbest chain:", best.best_steps);
  for (const auto node : best.best_chain) {
    std::printf(" %s", req.topo.format(node).c_str());
  }
  std::printf("\n");
  finish_stats(opts);
  return 0;
}

int cmd_compare(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto faults = setup_faults(opts, req.topo);
  sim::SimConfig config;
  config.port = opts.port();
  config.message_bytes =
      static_cast<std::size_t>(opts.get_int_or("bytes", 4096));
  if (faults) {
    config.faults = faults.get();
    std::printf("faults: %s\n", faults->format().c_str());
  }
  std::printf("%-9s %6s %12s %12s %9s %8s\n", "algorithm", "steps", "avg us",
              "max us", "blocked", "repairs");
  for (const auto& algo : core::all_algorithms()) {
    std::size_t repairs = 0;
    core::MulticastSchedule schedule = [&] {
      if (!faults) return algo.build(req);
      auto result = fault::fault_aware_multicast(algo, req, *faults);
      repairs = result.report.broken;
      return std::move(result.schedule);
    }();
    const auto steps =
        core::assign_steps(schedule, opts.port(), req.destinations);
    const auto result = sim::simulate_multicast(schedule, config);
    std::printf("%-9s %6d %12.1f %12.1f %9llu %8zu\n", algo.display.c_str(),
                steps.total_steps,
                result.avg_delay(req.destinations) / 1000.0,
                sim::to_microseconds(result.max_delay(req.destinations)),
                static_cast<unsigned long long>(
                    result.stats.blocked_acquisitions),
                repairs);
  }
  finish_stats(opts);
  return 0;
}

int cmd_faults(const harness::Options& opts) {
  const hcube::Dim n = static_cast<hcube::Dim>(opts.get_int("n"));
  const hcube::Topology topo(n, opts.resolution());
  const auto faults = opts.fault_set(topo);
  if (!faults) {
    std::puts("no faults configured (use --faults, --fail-links or "
              "--fail-nodes)");
    return 0;
  }
  const std::size_t links = topo.num_arcs() / 2;
  std::printf("%d-cube: %zu nodes, %zu links\n", n, topo.num_nodes(), links);
  std::printf("%s\n", faults->format().c_str());
  std::printf("live nodes: %zu / %zu\n", faults->live_nodes().size(),
              topo.num_nodes());
  std::printf("surviving cube %s\n", faults->surviving_connected()
                                         ? "is connected"
                                         : "is PARTITIONED");
  const std::string trace_out = opts.get_or("trace-out", "");
  if (!trace_out.empty()) {
    // Broadcast to every live node from the first one, repaired against
    // the fault set, and dump the worm timelines — a visual proof of
    // where the repaired tree detours around the faults.
    const hcube::NodeId source = faults->live_nodes().front();
    std::vector<hcube::NodeId> dests;
    for (const hcube::NodeId u : faults->live_nodes()) {
      if (u != source) dests.push_back(u);
    }
    core::MulticastRequest req{topo, source, std::move(dests)};
    req.validate();
    const auto& algo = core::find_algorithm(opts.get_or("algo", "wsort"));
    auto repaired =
        fault::repair_schedule(algo.build(req), req.destinations, *faults);
    std::printf("  %s\n", repaired.report.summary().c_str());
    sim::SimConfig config;
    config.port = opts.port();
    config.message_bytes =
        static_cast<std::size_t>(opts.get_int_or("bytes", 4096));
    config.record_trace = true;
    config.faults = &*faults;
    const auto result = sim::simulate_multicast(repaired.schedule, config);
    std::printf("degraded broadcast max delay: %.1f us\n",
                sim::to_microseconds(result.max_delay(req.destinations)));
    write_text_file(trace_out, result.trace.to_chrome_json(topo));
  }
  finish_stats(opts);
  return 0;
}

/// `requests` serves cycling `shapes` relative destination chains of
/// size `m`, each XOR-translated to a pseudorandom source — the cache's
/// design-target workload (shared by the serve and stats commands).
std::vector<core::MulticastRequest> translated_stream(
    const hcube::Topology& topo, std::size_t shapes, std::size_t m,
    std::size_t requests, workload::Rng& rng) {
  std::vector<std::vector<hcube::NodeId>> chains;
  for (std::size_t s = 0; s < std::max<std::size_t>(shapes, 1); ++s) {
    chains.push_back(workload::random_destinations(topo, 0, m, rng));
  }
  std::vector<core::MulticastRequest> stream;
  stream.reserve(requests);
  for (std::size_t i = 0; i < requests; ++i) {
    const auto& shape = chains[i % chains.size()];
    const hcube::NodeId source =
        static_cast<hcube::NodeId>(rng() % topo.num_nodes());
    std::vector<hcube::NodeId> dests;
    dests.reserve(shape.size());
    for (const hcube::NodeId d : shape) {
      const hcube::NodeId t = d ^ source;
      if (t != source) dests.push_back(t);
    }
    stream.push_back(core::MulticastRequest{topo, source, std::move(dests)});
  }
  return stream;
}

/// Serve a synthetic request stream through the schedule-serving
/// pipeline and report throughput plus the cache counters. The stream
/// cycles `--shapes` distinct destination shapes across random sources,
/// so every request past the first appearance of its shape is an
/// XOR-translation the cache can answer without rebuilding.
int cmd_serve(const harness::Options& opts) {
  const hcube::Dim n = static_cast<hcube::Dim>(opts.get_int("n"));
  const hcube::Topology topo(n, opts.resolution());
  const std::string algo = opts.get_or("algo", "wsort");
  const std::size_t requests =
      static_cast<std::size_t>(opts.get_int_or("requests", 1000));
  const std::size_t shapes =
      static_cast<std::size_t>(opts.get_int_or("shapes", 4));
  const std::size_t m = static_cast<std::size_t>(
      opts.get_int_or("m", static_cast<long>(topo.num_nodes() / 2)));
  const int threads = static_cast<int>(opts.get_int_or("threads", 1));
  const auto cache_opts = opts.cache(/*default_enabled=*/true);
  const auto faults = setup_faults(opts, topo);  // enables --algo <name>-ft

  workload::Rng rng(static_cast<std::uint64_t>(opts.get_int_or("seed", 1)));
  const auto stream = translated_stream(topo, shapes, m, requests, rng);

  std::shared_ptr<coll::ScheduleCache> cache;
  if (cache_opts.enabled) {
    coll::ScheduleCache::Config config;
    config.shards = cache_opts.shards;
    if (cache_opts.max_bytes != 0) config.max_bytes = cache_opts.max_bytes;
    cache = std::make_shared<coll::ScheduleCache>(config);
    cache->attach_to_registry(obs::default_registry(), "cache");
  }
  coll::ServePipeline pipeline(algo, cache);

  const auto start = std::chrono::steady_clock::now();
  const auto schedules = pipeline.serve_batch(stream, threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::size_t unicasts = 0;
  for (const auto& s : schedules) unicasts += s->num_unicasts();
  std::printf(
      "served %zu requests (%zu shapes, %zu dests each) on a %d-cube\n"
      "  algorithm: %s, threads: %d, cache: %s\n"
      "  wall: %.3fs  (%.0f requests/s), %zu unicasts planned\n",
      stream.size(), std::max<std::size_t>(shapes, 1), m, n, algo.c_str(),
      threads, cache ? "on" : "off", seconds,
      seconds > 0.0 ? static_cast<double>(stream.size()) / seconds : 0.0,
      unicasts);
  if (cache) {
    // Field names are Stats::for_each_field — identical to the "cache"
    // gauge source in the --stats JSON exposition by construction.
    std::printf("  cache:");
    cache->stats().for_each_field([](const char* field, double value) {
      std::printf(" %s=%.6g", field, value);
    });
    std::printf(" shards=%zu\n", cache->num_shards());
  }
  const std::string trace_out = opts.get_or("trace-out", "");
  if (!trace_out.empty()) {
    write_text_file(trace_out,
                    obs::default_registry().tracer().to_chrome_json());
  }
  finish_stats(opts);
  return 0;
}

/// Plan a striped delivery (payload split across the n arc-disjoint
/// spanning trees, coll/striped.hpp) and replay it through the DES next
/// to the single-tree plan for the same payload. With fault flags, the
/// degraded-mode planner runs (parity drop + detour repairs) and the
/// simulator replays against the armed fault set — completion is proof
/// of delivery. Below --stripe-threshold the pipeline falls back to the
/// latency-optimal single tree (that's the point of the threshold; use
/// --stripe-threshold 0 to force striping).
int cmd_stripe(const harness::Options& opts) {
  const auto req = request_from(opts);
  const auto faults = setup_faults(opts, req.topo);
  const std::size_t bytes =
      static_cast<std::size_t>(opts.get_int_or("bytes", 1 << 20));
  coll::StripeOptions stripe_opts;
  // Bare --parity keeps the legacy single-XOR-stripe meaning;
  // --parity=<k> reserves k Reed-Solomon parity trees (any k lost
  // stripes recoverable).
  if (opts.has("parity")) {
    if (opts.is_bare_flag("parity")) {
      stripe_opts.parity = true;
    } else {
      const long k = opts.get_int("parity");
      if (k < 0) throw std::invalid_argument("--parity expects k >= 0");
      stripe_opts.parity_stripes = static_cast<std::size_t>(k);
    }
  }
  stripe_opts.threshold_bytes = static_cast<std::size_t>(opts.get_int_or(
      "stripe-threshold", static_cast<long>(stripe_opts.threshold_bytes)));

  const auto cache_opts = opts.cache(/*default_enabled=*/false);
  std::shared_ptr<coll::ScheduleCache> cache;
  if (cache_opts.enabled) {
    coll::ScheduleCache::Config config;
    config.shards = cache_opts.shards;
    if (cache_opts.max_bytes != 0) config.max_bytes = cache_opts.max_bytes;
    cache = std::make_shared<coll::ScheduleCache>(config);
  }
  const std::string algo = opts.get_or("algo", "wsort");
  const coll::ServePipeline pipeline(algo, cache);
  const coll::StripedPlan plan =
      faults ? pipeline.serve_striped(req, bytes, stripe_opts, *faults)
             : pipeline.serve_striped(req, bytes, stripe_opts);

  std::printf("%zu-byte payload to %zu destinations on a %d-cube\n", bytes,
              req.destinations.size(), req.topo.dim());
  if (faults) std::printf("faults: %s\n", faults->format().c_str());
  if (!plan.striped) {
    std::printf("below --stripe-threshold %zu: single %s tree (%zu unicasts%s)\n",
                stripe_opts.threshold_bytes, algo.c_str(),
                plan.trees.front()->num_unicasts(),
                plan.repaired_trees != 0 ? ", detour-repaired" : "");
  } else {
    if (plan.parity_stripes == 0) {
      std::printf("striped across %zu trees: %zu data stripes x %zu bytes\n",
                  plan.trees.size(), plan.data_stripes, plan.stripe_bytes);
    } else {
      std::printf(
          "striped across %zu trees: %zu data stripes x %zu bytes + %zu %s "
          "parity stripe%s\n",
          plan.trees.size(), plan.data_stripes, plan.stripe_bytes,
          plan.parity_stripes, plan.parity_stripes == 1 ? "XOR" : "RS",
          plan.parity_stripes == 1 ? "" : "s");
    }
    for (std::size_t t = 0; t < plan.trees.size(); ++t) {
      const char* note =
          plan.dropped(t) ? "  DROPPED (stripe reconstructed from parity)"
          : plan.parity_tree >= 0 && static_cast<int>(t) >= plan.parity_tree
              ? "  parity"
              : "";
      std::printf("  tree %zu: %zu unicasts%s\n", t,
                  plan.trees[t]->num_unicasts(), note);
    }
    if (plan.repaired_trees != 0) {
      std::printf(
          "  repaired trees: %zu (%zu certified disjoint, %zu greedy)%s\n",
          plan.repaired_trees, plan.repaired_disjoint, plan.repaired_greedy,
          plan.certified_disjoint ? " — plan stays arc-disjoint" : "");
    }
  }

  // DES replay, striped vs the single tree carrying the whole payload.
  sim::SimConfig config;
  config.port = opts.port();
  config.faults = faults.get();
  const auto jobs = plan.jobs();
  const double striped_us = sim::to_microseconds(
      sim::simulate_collectives(jobs, config).makespan());
  const auto& single_algo = core::find_algorithm(algo);
  const auto single =
      build_schedule(single_algo, req, faults.get(), /*print_repairs=*/false);
  const sim::CollectiveJob single_job{&single, 0, bytes};
  const double single_us = sim::to_microseconds(
      sim::simulate_collectives(std::span(&single_job, 1), config).makespan());
  std::printf(
      "makespan: striped %.1f us, single %s tree %.1f us (%.2fx)\n"
      "effective bandwidth: %.2f MB/s striped, %.2f MB/s single\n",
      striped_us, algo.c_str(), single_us,
      striped_us > 0.0 ? single_us / striped_us : 0.0,
      striped_us > 0.0 ? static_cast<double>(bytes) / striped_us : 0.0,
      single_us > 0.0 ? static_cast<double>(bytes) / single_us : 0.0);
  finish_stats(opts);
  return 0;
}

/// Diagnostic one-stop shop: run a cached serving batch plus a
/// simulated broadcast with stats collection forced on and print the
/// registry exposition (JSON by default, --format text for the human
/// form). With --trace-out, pipeline spans and worm timelines land in
/// one Chrome trace document; the two sources are rebased independently
/// (spans are wall-clock nanoseconds, worm events virtual simulator
/// time), so the viewer shows both starting at t = 0.
int cmd_stats(const harness::Options& opts) {
  obs::set_stats_enabled(true);
  const std::string trace_out = opts.get_or("trace-out", "");
  if (!trace_out.empty()) obs::set_tracing_enabled(true);

  const hcube::Dim n = static_cast<hcube::Dim>(opts.get_int_or("n", 8));
  const hcube::Topology topo(n, opts.resolution());
  const std::string algo_name = opts.get_or("algo", "wsort");
  const std::size_t requests =
      static_cast<std::size_t>(opts.get_int_or("requests", 2048));
  const std::size_t shapes =
      static_cast<std::size_t>(opts.get_int_or("shapes", 4));
  const std::size_t m = static_cast<std::size_t>(
      opts.get_int_or("m", static_cast<long>(topo.num_nodes() / 2)));
  const int threads = static_cast<int>(opts.get_int_or("threads", 1));

  // A cached serving batch...
  workload::Rng rng(static_cast<std::uint64_t>(opts.get_int_or("seed", 1)));
  const auto stream = translated_stream(topo, shapes, m, requests, rng);
  auto cache = std::make_shared<coll::ScheduleCache>();
  cache->attach_to_registry(obs::default_registry(), "cache");
  const coll::ServePipeline pipeline(algo_name, cache);
  (void)pipeline.serve_batch(stream, threads);

  // ...then one full broadcast through the wormhole simulator.
  std::vector<hcube::NodeId> dests;
  for (hcube::NodeId u = 1; u < topo.num_nodes(); ++u) dests.push_back(u);
  core::MulticastRequest broadcast{topo, 0, std::move(dests)};
  broadcast.validate();
  sim::SimConfig config;
  config.port = opts.port();
  config.message_bytes =
      static_cast<std::size_t>(opts.get_int_or("bytes", 4096));
  config.record_trace = !trace_out.empty();
  const auto& algo = core::find_algorithm(algo_name);
  const auto result = sim::simulate_multicast(algo.build(broadcast), config);

  if (!trace_out.empty()) {
    metrics::JsonWriter w;
    w.begin_array();
    obs::Tracer& tracer = obs::default_registry().tracer();
    tracer.write_chrome_events(w, tracer.earliest_start_ns());
    result.trace.write_chrome_events(w, topo, result.trace.earliest_issue());
    w.end_array();
    write_text_file(trace_out, std::move(w).str());
  }

  const std::string format = opts.get_or("format", "json");
  if (format == "json") {
    print_registry(StatsMode::Json);
  } else if (format == "text") {
    print_registry(StatsMode::Text);
  } else if (format == "prom") {
    print_registry(StatsMode::Prometheus);
  } else {
    throw std::invalid_argument("--format expects json, text or prom, got '" +
                                format + "'");
  }
  return 0;
}

int usage() {
  std::fputs(
      "usage: hypercast_cli "
      "<plan|steps|delay|chains|compare|faults|serve|stripe|stats> "
      "[options]\n"
      "  common: --n <dim> (--dests a,b,c | --m <count> [--seed s])\n"
      "          [--source u] [--algo name] [--res high|low]\n"
      "          [--port one|all|k:<n>] [--bytes b]\n"
      "  obs:    [--stats[=text|json|prom]] print obs counters/histograms\n"
      "          [--trace-out=<file>] Chrome trace JSON (delay/faults:\n"
      "          worm timelines; serve: pipeline spans; stats: merged)\n"
      "  faults: [--faults count|rate] [--fault-seed s]\n"
      "          [--fail-links u:d,...] [--fail-nodes a,b]\n"
      "  serve:  --n <dim> [--requests r] [--shapes k] [--m dests]\n"
      "          [--threads t] parallel shard workers\n"
      "          [--cache on|off] [--cache-shards n] [--cache-bytes b]\n"
      "  stripe: --n <dim> [--bytes b] [--parity[=k]] [--stripe-threshold b]\n"
      "          [--cache on|off] — payload striped over the n\n"
      "          arc-disjoint trees vs the single tree, DES-replayed\n"
      "  stats:  [--n dim] [--requests r] [--format json|text|prom] —\n"
      "          serving batch + simulated broadcast, stats forced on\n",
      stderr);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  try {
    const auto opts = hypercast::harness::Options::parse(argc, argv, 2);
    // Flags go live before the command runs (stats_mode also validates
    // the value up front, so a typo fails before a long run, not after).
    if (stats_mode(opts) != StatsMode::Off) {
      hypercast::obs::set_stats_enabled(true);
    }
    if (!opts.get_or("trace-out", "").empty()) {
      hypercast::obs::set_tracing_enabled(true);
    }
    if (cmd == "plan") return cmd_plan(opts);
    if (cmd == "steps") return cmd_steps(opts);
    if (cmd == "delay") return cmd_delay(opts);
    if (cmd == "chains") return cmd_chains(opts);
    if (cmd == "compare") return cmd_compare(opts);
    if (cmd == "faults") return cmd_faults(opts);
    if (cmd == "serve") return cmd_serve(opts);
    if (cmd == "stripe") return cmd_stripe(opts);
    if (cmd == "stats") return cmd_stats(opts);
    return usage();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
