// hypercast_loadgen — closed/open-loop load generator for
// hypercast_served, emitting the BENCH_serve_net.json SLO artifact.
//
// Usage:
//   hypercast_loadgen --port P [--host ADDR] [--connections N]
//                     [--depth D] [--rate R] [--requests N]
//                     [--duration SECONDS] [--seed S] [--dim N]
//                     [--dests M] [--mix translated|random]
//                     [--out DIR] [--quick] [--quiet]
//
// Closed loop by default (each connection keeps --depth requests
// outstanding); --rate R > 0 switches to an open-loop arrival schedule
// at R requests/s aggregate. --out writes BENCH_serve_net.json into DIR
// so check_bench_regression.py --only serve_net can gate it. --quick
// shrinks the run for CI smoke. Exit status: 0 on a clean run, 1 when
// requests were lost or connections died, 2 on usage errors.

#include <filesystem>
#include <fstream>
#include <iostream>

#include "harness/options.hpp"
#include "net/loadgen.hpp"

int main(int argc, char** argv) {
  using hypercast::harness::Options;
  using hypercast::net::LoadgenConfig;
  using hypercast::net::LoadgenResult;
  try {
    const Options opts = Options::parse(argc, argv);
    const bool quick = opts.has("quick");
    const bool quiet = opts.has("quiet");

    LoadgenConfig config;
    config.host = opts.get_or("host", config.host);
    config.port = static_cast<std::uint16_t>(opts.get_int("port"));
    config.connections = static_cast<int>(
        opts.get_int_or("connections", quick ? 2 : config.connections));
    config.depth = static_cast<std::size_t>(
        opts.get_int_or("depth", static_cast<long>(config.depth)));
    config.open_rate = opts.has("rate") ? opts.get_double("rate") : 0.0;
    config.total_requests =
        static_cast<std::uint64_t>(opts.get_int_or("requests", 0));
    config.duration_s = opts.has("duration") ? opts.get_double("duration")
                                             : (quick ? 0.5 : 2.0);
    config.seed = static_cast<std::uint64_t>(
        opts.get_int_or("seed", static_cast<long>(config.seed)));
    config.dim = static_cast<int>(
        opts.get_int_or("dim", quick ? 8 : config.dim));
    config.dest_count = static_cast<std::size_t>(opts.get_int_or(
        "dests", quick ? 24 : static_cast<long>(config.dest_count)));
    config.mix = opts.get_or("mix", config.mix);
    if (config.mix != "translated" && config.mix != "random") {
      throw std::invalid_argument("--mix must be translated or random");
    }

    const LoadgenResult result = hypercast::net::run_loadgen(config);

    if (!quiet) {
      std::printf("sent %llu, ok %llu (%.0f req/s), shed %llu (%.2f%%), "
                  "bad %llu, lost %llu, io_errors %llu\n",
                  static_cast<unsigned long long>(result.sent),
                  static_cast<unsigned long long>(result.ok),
                  result.requests_per_sec(),
                  static_cast<unsigned long long>(result.shed()),
                  result.shed_rate() * 100.0,
                  static_cast<unsigned long long>(result.bad_request),
                  static_cast<unsigned long long>(result.lost),
                  static_cast<unsigned long long>(result.io_errors));
      std::printf("latency p50 %.1f us, p99 %.1f us, p99.9 %.1f us\n",
                  static_cast<double>(result.latency_ns(0.50)) / 1e3,
                  static_cast<double>(result.latency_ns(0.99)) / 1e3,
                  static_cast<double>(result.latency_ns(0.999)) / 1e3);
    }

    if (opts.has("out")) {
      const std::filesystem::path dir(opts.get("out"));
      std::filesystem::create_directories(dir);
      const std::filesystem::path path = dir / "BENCH_serve_net.json";
      std::ofstream out(path, std::ios::trunc);
      out << hypercast::net::bench_artifact_json(config, result) << "\n";
      if (!out) {
        std::cerr << "hypercast_loadgen: cannot write " << path << "\n";
        return 2;
      }
      if (!quiet) std::cout << "wrote " << path.string() << std::endl;
    }

    return (result.lost > 0 || result.io_errors > 0 || result.ok == 0) ? 1
                                                                       : 0;
  } catch (const std::exception& e) {
    std::cerr << "hypercast_loadgen: " << e.what() << "\n";
    return 2;
  }
}
