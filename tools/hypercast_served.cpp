// hypercast_served — the schedule-serving daemon.
//
// Puts a coll::ServePipeline behind the src/net/ front end: binary
// "hypercast-net-v1" frames and HTTP/JSON on one port, request batching
// into serve_batch, bounded-queue backpressure, and Prometheus metrics
// on GET /metrics. SIGTERM/SIGINT trigger a graceful drain: every
// admitted request is answered before the process exits.
//
// Usage:
//   hypercast_served [--port P] [--bind ADDR] [--algo NAME]
//                    [--workers N] [--queue-cap N] [--batch-max N]
//                    [--deadline-ms MS] [--max-conns N]
//                    [--cache on|off] [--cache-shards N] [--cache-bytes B]
//                    [--cosched] [--cosched-overlap K]
//                    [--cosched-stagger-us US] [--cosched-max-waves N]
//                    [--port-file PATH] [--quiet]
//
// --cosched turns on contention-aware co-scheduling of each served
// batch (coll::CoScheduler): schedules are packed into waves so no
// directed channel is crossed by more than --cosched-overlap worms per
// wave, and responses are released in wave order.
//
// --port 0 (the default) binds an ephemeral port; the bound port is
// printed on stdout and, with --port-file, written to PATH so scripts
// can pick it up race-free.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <thread>

#include "harness/options.hpp"
#include "net/server.hpp"

namespace {

std::atomic<hypercast::net::Server*> g_server{nullptr};
std::atomic<bool> g_stop{false};

void handle_signal(int) {
  // Async-signal-safe: one atomic store + one write() on a pipe.
  g_stop.store(true);
  if (auto* server = g_server.load()) server->request_stop();
}

}  // namespace

int main(int argc, char** argv) {
  using hypercast::harness::Options;
  try {
    const Options opts = Options::parse(argc, argv);

    hypercast::net::ServerConfig config;
    config.bind_address = opts.get_or("bind", config.bind_address);
    config.port = static_cast<std::uint16_t>(opts.get_int_or("port", 0));
    config.algorithm = opts.get_or("algo", config.algorithm);
    config.workers = static_cast<int>(
        opts.get_int_or("workers", config.workers));
    config.queue_capacity = static_cast<std::size_t>(opts.get_int_or(
        "queue-cap", static_cast<long>(config.queue_capacity)));
    config.batch_max = static_cast<std::size_t>(
        opts.get_int_or("batch-max", static_cast<long>(config.batch_max)));
    config.deadline_ms = static_cast<std::uint64_t>(
        opts.get_int_or("deadline-ms", 0));
    config.max_connections = static_cast<std::size_t>(opts.get_int_or(
        "max-conns", static_cast<long>(config.max_connections)));
    const Options::CacheOptions cache = opts.cache(/*default_enabled=*/true);
    config.cache = cache.enabled;
    config.cache_shards = cache.shards;
    config.cache_bytes = cache.max_bytes;
    config.cosched = opts.has("cosched");
    config.cosched_policy.max_arc_overlap = static_cast<std::uint32_t>(
        opts.get_int_or("cosched-overlap",
                        config.cosched_policy.max_arc_overlap));
    config.cosched_policy.stagger_offset_ns = static_cast<std::uint64_t>(
        opts.get_int_or("cosched-stagger-us",
                        static_cast<long>(
                            config.cosched_policy.stagger_offset_ns / 1000))) *
        1000;
    config.cosched_policy.max_waves = static_cast<std::size_t>(
        opts.get_int_or("cosched-max-waves",
                        static_cast<long>(config.cosched_policy.max_waves)));
    const bool quiet = opts.has("quiet");

    hypercast::net::Server server(config);
    server.start();
    g_server.store(&server);

    struct sigaction sa{};
    sa.sa_handler = handle_signal;
    sigaction(SIGTERM, &sa, nullptr);
    sigaction(SIGINT, &sa, nullptr);

    if (!quiet) {
      std::cout << "hypercast_served listening on " << config.bind_address
                << ":" << server.port() << " (algo=" << config.algorithm
                << ", workers=" << config.workers
                << ", queue=" << config.queue_capacity << ")" << std::endl;
    }
    if (opts.has("port-file")) {
      std::ofstream out(opts.get("port-file"), std::ios::trunc);
      out << server.port() << "\n";
    }

    while (!g_stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!quiet) std::cout << "draining..." << std::endl;
    g_server.store(nullptr);
    server.stop();
    if (!quiet) std::cout << "drained, bye" << std::endl;
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "hypercast_served: " << e.what() << "\n";
    return 2;
  }
}
